"""Collapse-tree tracing and error accounting (Sections 3.5, 4.2).

Every run of the framework induces a tree: leaves are New buffers,
internal nodes are Collapse outputs, and the (virtual) root is the final
Output over the surviving buffers.  The paper's deterministic error
analysis is phrased entirely in terms of this tree:

* **Lemma 4** (weakened form used in Section 4.2): the weighted rank error
  of Output is at most ``W/2 + w_max`` where ``W`` is the sum of the
  weights of all Collapse outputs and ``w_max`` the heaviest child of the
  root.
* **Lemma 5**: ``W <= sum_i w_i * (h_i - 1)`` over leaves, with ``h_i`` the
  leaf's distance from the root.

:class:`TreeTrace` records the tree as it grows so tests can check both
lemmas against observed behaviour, the planner's leaf-count formulas
(``L_d = C(b+h-2, h-1)`` etc.) can be validated against reality, and the
benchmark harness can reproduce the paper's Figures 2-3.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

__all__ = ["TraceNode", "TreeTrace"]


@dataclass(slots=True)
class TraceNode:
    """One logical buffer in the collapse tree."""

    node_id: int
    kind: str  # "leaf" or "collapse"
    weight: int
    level: int
    children: list[int] = field(default_factory=list)
    parent: int | None = None


class TreeTrace:
    """Record of every New and Collapse performed by an engine run."""

    def __init__(self) -> None:
        self._nodes: dict[int, TraceNode] = {}
        self._next_id = 0
        self._collapse_count = 0
        self._collapse_weight_sum = 0

    # ------------------------------------------------------------------
    # Recording (called by the engine)
    # ------------------------------------------------------------------
    def new_leaf(self, weight: int, level: int) -> int:
        """Record a New operation; returns the leaf's node id."""
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = TraceNode(node_id, "leaf", weight, level)
        return node_id

    def new_collapse(self, child_ids: Iterable[int], weight: int, level: int) -> int:
        """Record a Collapse; returns the output node id."""
        node_id = self._next_id
        self._next_id += 1
        children = list(child_ids)
        if len(children) < 2:
            raise ValueError("a collapse node needs at least two children")
        node = TraceNode(node_id, "collapse", weight, level, children)
        self._nodes[node_id] = node
        for child in children:
            self._nodes[child].parent = node_id
        self._collapse_count += 1
        self._collapse_weight_sum += weight
        return node_id

    # ------------------------------------------------------------------
    # Statistics (Section 4.2 notation)
    # ------------------------------------------------------------------
    @property
    def collapse_count(self) -> int:
        """``C``: number of Collapse operations so far."""
        return self._collapse_count

    @property
    def collapse_weight_sum(self) -> int:
        """``W``: sum of the weights of all Collapse outputs so far."""
        return self._collapse_weight_sum

    @property
    def node_count(self) -> int:
        """Total logical buffers created (leaves + collapse outputs)."""
        return len(self._nodes)

    def node(self, node_id: int) -> TraceNode:
        """Look up a node by id."""
        return self._nodes[node_id]

    def leaves(self) -> list[TraceNode]:
        """All leaf nodes, in creation order."""
        return [n for n in self._nodes.values() if n.kind == "leaf"]

    def roots(self) -> list[TraceNode]:
        """Live nodes (never consumed by a Collapse): the root's children."""
        return [n for n in self._nodes.values() if n.parent is None]

    def leaf_counts_by_level(self) -> Counter[int]:
        """Number of leaves created at each level (L_d is level 0's count)."""
        return Counter(n.level for n in self._nodes.values() if n.kind == "leaf")

    def max_collapse_level(self) -> int:
        """Highest level of any Collapse output (-1 before any collapse)."""
        levels = [n.level for n in self._nodes.values() if n.kind == "collapse"]
        return max(levels, default=-1)

    def depth_from_root(self, node_id: int) -> int:
        """Edges from the node up to the virtual root (live ancestor + 1)."""
        depth = 1  # the broken edge from the live ancestor to the root
        node = self._nodes[node_id]
        while node.parent is not None:
            node = self._nodes[node.parent]
            depth += 1
        return depth

    def height(self) -> int:
        """Height of the tree: max leaf distance from the virtual root."""
        leaves = self.leaves()
        if not leaves:
            return 0
        return max(self.depth_from_root(leaf.node_id) for leaf in leaves)

    # ------------------------------------------------------------------
    # Error bounds
    # ------------------------------------------------------------------
    def weak_error_bound(self, live_weights: Iterable[int]) -> float:
        """Section 4.2's weakened Lemma 4 bound: ``W/2 + w_max``.

        :param live_weights: weights of the buffers Output would consume
            (the root's children) — pass the engine's current full-buffer
            weights.
        """
        weights = list(live_weights)
        w_max = max(weights, default=0)
        return self._collapse_weight_sum / 2.0 + w_max

    def lemma5_bound(self) -> int:
        """Lemma 5's upper bound on ``W``: ``sum_i w_i * (h_i - 1)``."""
        return sum(
            leaf.weight * (self.depth_from_root(leaf.node_id) - 1)
            for leaf in self.leaves()
        )

    # ------------------------------------------------------------------
    # Rendering (Figures 2-3)
    # ------------------------------------------------------------------
    def render(self) -> str:
        """ASCII rendering of the current tree, root at the top.

        Nodes are labelled ``weight@level`` as in the paper's Figures 2-3
        (which label nodes with their weights).
        """
        lines = ["root"]
        live = sorted(self.roots(), key=lambda n: n.node_id)
        for index, node in enumerate(live):
            self._render_node(node, "", index == len(live) - 1, lines, broken=True)
        return "\n".join(lines)

    def _render_node(
        self,
        node: TraceNode,
        prefix: str,
        is_last: bool,
        lines: list[str],
        *,
        broken: bool = False,
    ) -> None:
        connector = "└─" if is_last else "├─"
        edge = "┄" if broken else "─"  # broken edges join root to its children
        label = f"{node.weight}@L{node.level}"
        if node.kind == "leaf":
            label += " (leaf)"
        lines.append(f"{prefix}{connector}{edge} {label}")
        child_prefix = prefix + ("   " if is_last else "│  ")
        children = [self._nodes[c] for c in node.children]
        for index, child in enumerate(children):
            self._render_node(child, child_prefix, index == len(children) - 1, lines)
