"""Dynamic buffer allocation (Section 5).

The base algorithm allocates all ``b * k`` memory up front — "if the input
consists of a singleton element, our main memory usage is clearly
outrageous".  Section 5 lets memory grow with the stream instead: buffers
are allocated according to a *schedule*, and a schedule is **valid** when
the output is still an eps-approximate quantile no matter where the stream
terminates.

Following the paper, the user expresses intent as *upper limits* on memory
for different stream lengths; :func:`plan_schedule` then searches for
``(k, b, h)`` whose limit-respecting schedule is valid:

1. assign increasingly large values to ``k`` (fixing ``k`` fixes ``b``, the
   most buffers the final limit affords, and the schedule: allocate the
   next buffer as soon as the limits allow);
2. Eq 3 limits ``h``, the height the tree may reach before sampling;
3. the schedule's actual tree shape is *simulated* (collapse policies
   depend only on buffer levels, so a ``k = 1`` simulation is
   shape-exact), checking the Lemma 4 error bound ``W/2 + w_max <=
   eps * N`` at every prefix and measuring the true ``L_d`` and ``L_s``
   under delayed allocation;
4. Eq 1 yields an upper bound on alpha, Eq 2 a lower bound; the schedule
   is accepted iff the bounds intersect (0, 1) — otherwise "the current
   schedule is rejected and we start all over again with a larger k".
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.framework import AllocatorHook, CollapseEngine
from repro.core.params import Plan, plan_parameters, tree_error_requirement
from repro.core.policy import CollapsePolicy, MRLPolicy

__all__ = ["AllocationSchedule", "plan_schedule", "MemoryLimits"]

_SIMULATION_LEAF_CAP = 500_000


class MemoryLimits:
    """User-specified upper limits on memory as the stream grows.

    :param points: ``(n, max_elements)`` pairs, ascending in ``n``: while
        at most ``n`` elements have streamed in, memory may not exceed
        ``max_elements`` element slots.  Beyond the last ``n`` the last
        limit applies.
    """

    def __init__(self, points: Sequence[tuple[int, int]]) -> None:
        if not points:
            raise ValueError("at least one (n, max_elements) point is required")
        ns = [n for n, _ in points]
        if ns != sorted(ns) or len(set(ns)) != len(ns):
            raise ValueError("limit points must have strictly ascending n")
        if any(m < 1 for _, m in points):
            raise ValueError("memory limits must be positive")
        self._ns = ns
        self._ms = [m for _, m in points]

    def at(self, n: int) -> int:
        """The memory limit (element slots) in force at stream length n."""
        index = bisect.bisect_left(self._ns, n)
        if index >= len(self._ms):
            index = len(self._ms) - 1
        return self._ms[index]

    @property
    def final(self) -> int:
        """The limit for arbitrarily long streams."""
        return self._ms[-1]

    @property
    def points(self) -> list[tuple[int, int]]:
        """The defining (n, max_elements) pairs."""
        return list(zip(self._ns, self._ms))


@dataclass(frozen=True, slots=True)
class AllocationSchedule:
    """A validated buffer-allocation schedule.

    :ivar allocation_leaves: ``allocation_leaves[i]`` is the leaf count at
        which physical buffer ``i`` may be allocated (the paper's sequence
        ``L_1, L_2, ..., L_b``).
    :ivar leaves_before_sampling: measured ``L_d`` under this schedule.
    :ivar leaves_per_level: measured ``L_s`` under this schedule.
    """

    eps: float
    delta: float
    b: int
    k: int
    h: int
    alpha: float
    allocation_leaves: tuple[int, ...]
    leaves_before_sampling: int
    leaves_per_level: int
    policy_name: str

    @property
    def memory(self) -> int:
        """Peak memory: ``b * k`` element slots."""
        return self.b * self.k

    def plan(self) -> Plan:
        """The equivalent :class:`~repro.core.params.Plan` for estimators."""
        return Plan(
            eps=self.eps,
            delta=self.delta,
            b=self.b,
            k=self.k,
            h=self.h,
            alpha=self.alpha,
            leaves_before_sampling=self.leaves_before_sampling,
            leaves_per_level=self.leaves_per_level,
            policy_name=self.policy_name,
        )

    def allocator(self) -> AllocatorHook:
        """The engine hook enforcing this schedule at run time."""
        thresholds = self.allocation_leaves

        def hook(leaves_created: int, buffers_allocated: int) -> bool:
            return (
                buffers_allocated < len(thresholds)
                and leaves_created >= thresholds[buffers_allocated]
            )

        return hook

    def memory_at(self, n: int) -> int:
        """Element slots allocated once ``n`` stream elements have arrived."""
        leaves = min(n // self.k, self.leaves_before_sampling)
        allocated = sum(1 for threshold in self.allocation_leaves if threshold <= leaves)
        # The buffer currently being staged needs a slot as soon as any
        # data has arrived.
        if n > 0:
            allocated = max(allocated, 1)
        return allocated * self.k


@dataclass(slots=True)
class _ShapeResult:
    valid: bool
    leaves_before_sampling: int
    leaves_per_level: int
    allocation_leaves: tuple[int, ...]


def _simulate_shape(
    b: int,
    k: int,
    h: int,
    eps: float,
    policy: CollapsePolicy,
    allocator: AllocatorHook | None,
    min_leaf_mass: float = 0.0,
) -> _ShapeResult:
    """Shape-exact simulation of the schedule's collapse tree.

    Runs the real engine with ``k = 1`` dummy buffers (policies see only
    levels, so the tree is identical), mirroring the unknown-N rate/level
    schedule, and checks the Lemma 4 bound ``W/2 + w_max <= eps * N`` just
    after every collapse opportunity — the paper's requirement that the
    output be valid "no matter what the current value of N is".
    """
    engine = CollapseEngine(b, 1, policy, allocator=allocator)
    allocations: list[int] = []
    leaves = 0
    l_d = 0
    l_s = 0
    level = 0
    while leaves < _SIMULATION_LEAF_CAP:
        before = engine.buffers_allocated
        engine.ensure_empty()
        if engine.buffers_allocated > before:
            allocations.append(leaves)
        onset_gap = engine.max_collapse_level - h
        if onset_gap >= 0 and level != onset_gap + 1:
            if onset_gap == 0 and l_d == 0:
                l_d = leaves
                if l_d * k < min_leaf_mass:
                    # Eq 1 cannot hold for any alpha; skip the L_s phase.
                    return _ShapeResult(False, l_d, 0, tuple(allocations))
            elif onset_gap == 1 and l_s == 0:
                l_s = leaves - l_d
            level = onset_gap + 1
            if onset_gap >= 1:
                return _ShapeResult(True, l_d, l_s, tuple(allocations))
        if engine.max_collapse_level < h:
            # Pre-onset validity: the Lemma 4 bound (already in element
            # ranks — buffer weights are element multiplicities and do not
            # depend on k) against the smallest stream length that can
            # exhibit this tree shape, leaves * k.
            if leaves > 0 and engine.error_bound_elements() > eps * leaves * k:
                return _ShapeResult(False, 0, 0, tuple(allocations))
        engine.deposit([0.0], weight=2**level if level else 1, level=level)
        leaves += 1
    return _ShapeResult(False, 0, 0, tuple(allocations))


def plan_schedule(
    eps: float,
    delta: float,
    limits: MemoryLimits | Sequence[tuple[int, int]],
    *,
    policy: CollapsePolicy | None = None,
    max_k_growth: float = 64.0,
) -> AllocationSchedule:
    """Find a valid buffer-allocation schedule within the user's limits.

    :param limits: memory ceilings per stream length (see
        :class:`MemoryLimits`).
    :raises ValueError: when no valid schedule fits the limits (the paper's
        trial-and-error outcome: the user must raise their limits).
    """
    if not isinstance(limits, MemoryLimits):
        limits = MemoryLimits(limits)
    policy = policy if policy is not None else MRLPolicy()
    base = plan_parameters(eps, delta, policy=policy)
    log_term = math.log(2.0 / delta)
    k = max(base.k, 2)
    while k <= base.k * max_k_growth:
        b = min(50, limits.final // k)
        if b < 2:
            break
        max_h = max(1, math.floor(2.0 * eps * k) - 1)
        for h in range(1, min(max_h, 40) + 1):
            # Analytic precheck before paying for a simulation: delayed
            # allocation can only *shrink* L_d and L_s below the full-b
            # closed forms, so if Eq 1 fails even with those upper bounds,
            # no schedule at this (k, b, h) can be valid.
            try:
                l_d_max = policy.leaves_before_height(b, h)
                l_s_max = policy.leaves_per_sampled_level(b, h)
            except ValueError:
                continue
            mass_max = min(l_d_max, 8.0 * l_s_max / 3.0) * k
            if log_term / (2.0 * eps * eps * mass_max) >= 1.0:
                continue
            limit_hook = _limit_allocator(limits, k)
            shape = _simulate_shape(
                b,
                k,
                h,
                eps,
                policy,
                limit_hook,
                min_leaf_mass=log_term / (2.0 * eps * eps),
            )
            if not shape.valid or shape.leaves_per_level == 0:
                continue
            l_d, l_s = shape.leaves_before_sampling, shape.leaves_per_level
            # Eq 1: (1-alpha)^2 >= log_term / (2 eps^2 min(...) k)
            mass = min(l_d, 8.0 * l_s / 3.0) * k
            ratio = log_term / (2.0 * eps * eps * mass)
            if ratio >= 1.0:
                continue
            alpha_hi = 1.0 - math.sqrt(ratio)
            # Eq 2: alpha >= tree requirement / (eps k)
            alpha_lo = tree_error_requirement(l_d, l_s, h) / (eps * k)
            if not alpha_lo <= alpha_hi or alpha_lo >= 1.0:
                continue
            alpha = (alpha_lo + min(alpha_hi, 1.0)) / 2.0
            return AllocationSchedule(
                eps=eps,
                delta=delta,
                b=b,
                k=k,
                h=h,
                alpha=alpha,
                allocation_leaves=shape.allocation_leaves,
                leaves_before_sampling=l_d,
                leaves_per_level=l_s,
                policy_name=policy.name,
            )
        k = max(k + 1, math.ceil(k * 1.2))
    raise ValueError(
        "no valid buffer-allocation schedule fits the given memory limits; "
        "raise the limits (especially the final one) and try again"
    )


def _limit_allocator(limits: MemoryLimits, k: int) -> AllocatorHook:
    """Allocate the next buffer as soon as the user limits allow it."""

    def hook(leaves_created: int, buffers_allocated: int) -> bool:
        stream_length = leaves_created * k
        return (buffers_allocated + 1) * k <= limits.at(stream_length)

    return hook
