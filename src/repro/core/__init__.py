"""Core algorithms: the paper's contribution and the MRL98 framework it extends.

Layering (bottom-up):

* :mod:`repro.core.buffers` / :mod:`repro.core.operations` — the buffer
  abstraction and the **Collapse** / **Output** operators (Section 3).
* :mod:`repro.core.policy` — pluggable collapse policies: the paper's
  lowest-level policy, Munro-Paterson pairwise, and Alsabti-Ranka-Singh.
* :mod:`repro.core.tree` — collapse-tree tracing and the Lemma 4/5 error
  accounting used by tests and the planner.
* :mod:`repro.core.framework` — the buffer-pool engine shared by every
  estimator.
* :mod:`repro.core.params` — the (eps, delta) -> (b, k, h) planner
  (Section 4.5) and the known-N planner it is compared against.
* :mod:`repro.core.unknown_n` — **the paper's algorithm**: non-uniform
  sampling, no advance knowledge of N, queries at any time.
* :mod:`repro.core.known_n` — the MRL98 comparator (N known upfront).
* :mod:`repro.core.extreme` — the Section 7 extreme-value estimator.
* :mod:`repro.core.multi` — simultaneous quantiles and the
  pre-computation trick (Section 4.7).
* :mod:`repro.core.schedule` — dynamic buffer-allocation schedules
  (Section 5).
* :mod:`repro.core.parallel` — the Section 6 parallel/distributed scheme.
"""

from repro.core.buffers import Buffer, BufferState
from repro.core.extreme import ExtremeValueEstimator
from repro.core.framework import CollapseEngine
from repro.core.known_n import KnownNQuantiles
from repro.core.multi import MultiQuantiles, PrecomputedQuantiles
from repro.core.parallel import MergedSummary, ParallelQuantiles, merge_snapshots
from repro.core.params import (
    KnownNPlan,
    Plan,
    known_n_memory,
    plan_known_n,
    plan_parameters,
)
from repro.core.policy import ARSPolicy, CollapsePolicy, MRLPolicy, MunroPatersonPolicy
from repro.core.schedule import AllocationSchedule, MemoryLimits, plan_schedule
from repro.core.streaming_extreme import StreamingExtremeEstimator
from repro.core.tree import TreeTrace
from repro.core.unknown_n import EstimatorSnapshot, UnknownNQuantiles

__all__ = [
    "Buffer",
    "BufferState",
    "CollapseEngine",
    "CollapsePolicy",
    "MRLPolicy",
    "MunroPatersonPolicy",
    "ARSPolicy",
    "TreeTrace",
    "Plan",
    "KnownNPlan",
    "plan_parameters",
    "plan_known_n",
    "known_n_memory",
    "UnknownNQuantiles",
    "KnownNQuantiles",
    "ExtremeValueEstimator",
    "StreamingExtremeEstimator",
    "MultiQuantiles",
    "PrecomputedQuantiles",
    "AllocationSchedule",
    "MemoryLimits",
    "plan_schedule",
    "ParallelQuantiles",
    "MergedSummary",
    "merge_snapshots",
    "EstimatorSnapshot",
]
