"""Collapse policies (Section 3.6 and the framework's prior instances).

A collapse policy answers one question: *when every buffer is full, which
subset do we Collapse?*  The paper's framework recovers earlier algorithms
as policies:

* :class:`MRLPolicy` — the paper's choice (and MRL98's "new algorithm"):
  collapse **all** buffers at the lowest occupied level, first promoting a
  lone lowest-level buffer upward until at least two share the lowest
  level.  Maximises leaves covered per unit memory.
* :class:`MunroPatersonPolicy` — MP80: collapse exactly **two** buffers at
  the lowest level (binary tree).  Simple; the paper uses it (``beta = 2,
  c = 0``) to derive the closed-form space complexity of Theorem 1.
* :class:`ARSPolicy` — Alsabti-Ranka-Singh: collapse **everything**
  whenever the pool fills, regardless of level.  Shallow tree, but weights
  grow quickly.

Each policy also predicts the leaf counts of the tree it builds — ``L_d``
(leaves before sampling onset at height ``h``) and ``L_s`` (leaves per
sampled level) — which is exactly what the Section 4.5 parameter planner
needs.  The closed forms are property-tested against direct simulation of
the engine.
"""

from __future__ import annotations

import abc
import math
from collections.abc import Sequence

from repro.core.buffers import Buffer

__all__ = [
    "CollapsePolicy",
    "MRLPolicy",
    "MunroPatersonPolicy",
    "ARSPolicy",
    "policy_from_name",
]


class CollapsePolicy(abc.ABC):
    """Strategy deciding which full buffers a Collapse consumes."""

    #: Short identifier used in benchmark output.
    name: str = "abstract"

    #: Eager policies collapse as soon as two buffers share a level (the
    #: Munro-Paterson discipline, which builds a strict binary tree and
    #: keeps at most one buffer per level).  Lazy policies collapse only
    #: when the pool is out of empty buffers — MRL98's insight, which lets
    #: the tree cover C(b+h-1, h) leaves instead of 2^h.
    eager: bool = False

    @abc.abstractmethod
    def choose(self, full_buffers: Sequence[Buffer]) -> list[Buffer]:
        """Pick the buffers to collapse; may promote levels as a side effect.

        Called only when no buffer is empty and at least two are full.
        """

    @abc.abstractmethod
    def leaves_before_height(self, b: int, h: int) -> int:
        """``L_d``: New buffers consumed before the first level-``h`` output."""

    @abc.abstractmethod
    def leaves_per_sampled_level(self, b: int, h: int) -> int:
        """``L_s``: New buffers consumed per level band after sampling onset."""

    @staticmethod
    def _lowest_group(full_buffers: Sequence[Buffer]) -> list[Buffer]:
        """Buffers at the lowest level, promoting a lone minimum upward.

        Implements Section 3.6: "Let l be the smallest level of any full
        buffer.  If there is exactly one buffer at level l, we increment
        its level until there are at least two at the lowest level."
        """
        if len(full_buffers) < 2:
            raise RuntimeError(
                f"collapse policy invoked with {len(full_buffers)} full buffers"
            )
        while True:
            min_level = min(buf.level for buf in full_buffers)
            group = [buf for buf in full_buffers if buf.level == min_level]
            if len(group) >= 2:
                return group
            next_level = min(
                buf.level for buf in full_buffers if buf.level > min_level
            )
            group[0].level = next_level


class MRLPolicy(CollapsePolicy):
    """Collapse all buffers at the lowest occupied level (the paper's policy)."""

    name = "mrl"

    def choose(self, full_buffers: Sequence[Buffer]) -> list[Buffer]:
        return self._lowest_group(full_buffers)

    def leaves_before_height(self, b: int, h: int) -> int:
        # The b-buffer tree grown to height h has C(b+h-1, h) leaves: each
        # level-h node is built from level-(h-1) nodes made with one fewer
        # free buffer each time, giving the Pascal's-triangle recurrence
        # L(b, h) = sum_{i=1..b} L(i, h-1), L(b, 1) = b.
        _check_tree_args(b, h)
        return math.comb(b + h - 1, h)

    def leaves_per_sampled_level(self, b: int, h: int) -> int:
        # After onset one slot at the top level is permanently occupied, so
        # effectively b - 1 buffers build the next top node:
        # L_s = L_d(b - 1, h) = C(b+h-2, h).
        _check_tree_args(b, h)
        return math.comb(b + h - 2, h)


class MunroPatersonPolicy(CollapsePolicy):
    """Collapse pairs of same-level buffers eagerly (MP80; binary tree).

    With the eager trigger the engine collapses two buffers the moment
    they share a level, so at most one buffer per level survives and the
    tree is the binary merge tree of MP80.  ``choose`` is still defined
    for the out-of-buffers fallback (fewer buffers than the height needs).
    """

    name = "munro-paterson"
    eager = True

    def choose(self, full_buffers: Sequence[Buffer]) -> list[Buffer]:
        return self._lowest_group(full_buffers)[:2]

    def leaves_before_height(self, b: int, h: int) -> int:
        # A binary collapse tree of height h consumes 2^h leaves; b buffers
        # can sustain heights up to b - 1 (one buffer per level plus the
        # incoming leaf, as in a binary counter).
        _check_tree_args(b, h)
        if h > b - 1:
            raise ValueError(
                f"Munro-Paterson with {b} buffers cannot reach height {h} "
                f"(max {b - 1})"
            )
        return 2**h

    def leaves_per_sampled_level(self, b: int, h: int) -> int:
        # Post-onset, one level-h buffer already exists; building its
        # sibling takes 2^(h-1) weight-doubled leaves.
        _check_tree_args(b, h)
        if h > b - 1:
            raise ValueError(
                f"Munro-Paterson with {b} buffers cannot reach height {h} "
                f"(max {b - 1})"
            )
        return 2 ** (h - 1)


class ARSPolicy(CollapsePolicy):
    """Collapse every full buffer at once (Alsabti-Ranka-Singh)."""

    name = "ars"

    def choose(self, full_buffers: Sequence[Buffer]) -> list[Buffer]:
        return list(full_buffers)

    def leaves_before_height(self, b: int, h: int) -> int:
        # First collapse eats b leaves; every later collapse eats b - 1
        # leaves plus the previous output, raising the level by one.
        _check_tree_args(b, h)
        return b + (h - 1) * (b - 1)

    def leaves_per_sampled_level(self, b: int, h: int) -> int:
        _check_tree_args(b, h)
        return b - 1


#: The named, stateless policies a checkpoint can reconstruct by name.
#: Custom policy objects fall outside this registry and therefore cannot be
#: checkpointed (repro.persist refuses them loudly rather than guessing).
POLICY_REGISTRY: dict[str, type[CollapsePolicy]] = {
    MRLPolicy.name: MRLPolicy,
    MunroPatersonPolicy.name: MunroPatersonPolicy,
    ARSPolicy.name: ARSPolicy,
}


def policy_from_name(name: str) -> CollapsePolicy:
    """Reconstruct a built-in collapse policy from its registry name."""
    try:
        return POLICY_REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown collapse policy {name!r}; checkpointable policies are "
            f"{sorted(POLICY_REGISTRY)}"
        ) from None


def _check_tree_args(b: int, h: int) -> None:
    if b < 2:
        raise ValueError(f"need at least 2 buffers, got {b}")
    if h < 1:
        raise ValueError(f"height must be >= 1, got {h}")
