"""The buffer abstraction of the MRL framework (Section 3).

The algorithm manages ``b`` physical buffers, each holding up to ``k``
elements.  A buffer is always **empty**, **partial**, or **full**, and a
non-empty buffer carries a positive integer *weight* (each stored element
conceptually stands for ``weight`` input elements) and an integer *level*
(its position in the collapse tree, used by the collapse policy).

Buffers are deliberately mutable and reused in place: Collapse writes its
output into one of its input buffers ("Y is logically different from
X1..Xc but physically occupies space corresponding to one of them"), so the
physical memory footprint stays at ``b * k`` elements.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.kernels import KernelBackend

__all__ = ["Buffer", "BufferState"]


class BufferState(enum.Enum):
    """Lifecycle states of a physical buffer."""

    EMPTY = "empty"
    PARTIAL = "partial"
    FULL = "full"


class Buffer:
    """One physical buffer of capacity ``k``.

    The element list of a non-empty buffer is always kept sorted — New
    sorts on populate, and Collapse produces sorted output — which is what
    lets Collapse and Output run as streaming merges.
    """

    __slots__ = ("capacity", "data", "weight", "level", "state", "node_id")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.data: list[float] = []
        self.weight = 0
        self.level = 0
        self.state = BufferState.EMPTY
        # Logical identity of the buffer contents in the collapse-tree trace
        # (physical buffers are reused, logical buffers are not).
        self.node_id: int | None = None

    def __repr__(self) -> str:
        return (
            f"Buffer(state={self.state.value}, len={len(self.data)}/"
            f"{self.capacity}, weight={self.weight}, level={self.level})"
        )

    @property
    def is_empty(self) -> bool:
        return self.state is BufferState.EMPTY

    @property
    def is_full(self) -> bool:
        return self.state is BufferState.FULL

    @property
    def is_partial(self) -> bool:
        return self.state is BufferState.PARTIAL

    @property
    def total_weight(self) -> int:
        """Weight mass represented: ``len(data) * weight``."""
        return len(self.data) * self.weight

    def populate(
        self,
        values: list[float],
        weight: int,
        level: int,
        *,
        backend: KernelBackend | None = None,
    ) -> None:
        """Fill an empty buffer with (unsorted) values — the tail of New.

        Marks the buffer full when exactly ``capacity`` values are given,
        partial otherwise (the input stream ran dry mid-fill).  When a
        kernel backend is supplied its sort kernel decides the storage
        form (a plain list for the python backend, a float64 array for
        the numpy one).
        """
        if not self.is_empty:
            raise RuntimeError(f"cannot populate a non-empty buffer: {self!r}")
        if len(values) == 0:
            raise ValueError("cannot populate a buffer with zero values")
        if len(values) > self.capacity:
            raise ValueError(
                f"{len(values)} values exceed buffer capacity {self.capacity}"
            )
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        self.data = sorted(values) if backend is None else backend.sort_values(values)
        self.weight = weight
        self.level = level
        self.state = (
            BufferState.FULL if len(values) == self.capacity else BufferState.PARTIAL
        )

    def store_collapse_output(
        self, values: Sequence[float], weight: int, level: int
    ) -> None:
        """Overwrite this buffer with a Collapse result (already sorted).

        ``values`` may be a list or a backend array; it is stored as-is.
        """
        if len(values) != self.capacity:
            raise ValueError(
                f"collapse output must have exactly {self.capacity} elements, "
                f"got {len(values)}"
            )
        self.data = values
        self.weight = weight
        self.level = level
        self.state = BufferState.FULL

    def mark_empty(self) -> None:
        """Reclaim the buffer (its contents were consumed by a Collapse)."""
        self.data = []
        self.weight = 0
        self.level = 0
        self.state = BufferState.EMPTY

    def as_weighted(self) -> tuple[list[float], int]:
        """View as a ``(sorted_values, weight)`` pair for merging/queries."""
        if self.is_empty:
            raise RuntimeError("an empty buffer has no weighted view")
        return self.data, self.weight
