"""The buffer abstraction of the MRL framework (Section 3).

The algorithm manages ``b`` physical buffers, each holding up to ``k``
elements.  A buffer is always **empty**, **partial**, or **full**, and a
non-empty buffer carries a positive integer *weight* (each stored element
conceptually stands for ``weight`` input elements) and an integer *level*
(its position in the collapse tree, used by the collapse policy).

Buffers are deliberately mutable and reused in place: Collapse writes its
output into one of its input buffers ("Y is logically different from
X1..Xc but physically occupies space corresponding to one of them"), so the
physical memory footprint stays at ``b * k`` elements.

Since the columnar-arena refactor a :class:`Buffer` owns no element
storage of its own: it is a typed *view* — (slot, length, weight, level,
state) — into a shared :class:`~repro.core.arena.BufferArena`, and
``data`` is a zero-copy slice of the arena's contiguous float64 store.
A buffer constructed standalone (``Buffer(capacity)``, as the unit tests
and examples do) gets a private single-slot arena, so the API is
unchanged.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.core.arena import BufferArena

if TYPE_CHECKING:
    from repro.kernels import KernelBackend

__all__ = ["Buffer", "BufferState"]


class BufferState(enum.Enum):
    """Lifecycle states of a physical buffer."""

    EMPTY = "empty"
    PARTIAL = "partial"
    FULL = "full"


class Buffer:
    """One physical buffer of capacity ``k`` — a typed view into an arena.

    The elements of a non-empty buffer are always kept sorted — New sorts
    on populate, and Collapse produces sorted output — which is what lets
    Collapse and Output run as streaming merges.

    :param capacity: elements the buffer can hold (``k``).
    :param arena: the shared arena this buffer views; ``None`` allocates
        a private single-slot arena (standalone construction).
    :param slot: the arena slot this buffer owns; ignored without an
        arena.
    """

    __slots__ = ("capacity", "weight", "level", "state", "node_id", "_arena", "_slot", "_length")

    def __init__(
        self,
        capacity: int,
        *,
        arena: BufferArena | None = None,
        slot: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        if arena is None:
            arena = BufferArena(1, capacity)
            slot = 0
        elif capacity != arena.capacity:
            raise ValueError(
                f"buffer capacity {capacity} differs from arena slot "
                f"capacity {arena.capacity}"
            )
        self.capacity = capacity
        self._arena = arena
        self._slot = slot
        self._length = 0
        self.weight = 0
        self.level = 0
        self.state = BufferState.EMPTY
        # Logical identity of the buffer contents in the collapse-tree trace
        # (physical buffers are reused, logical buffers are not).
        self.node_id: int | None = None

    def __repr__(self) -> str:
        return (
            f"Buffer(state={self.state.value}, len={self._length}/"
            f"{self.capacity}, weight={self.weight}, level={self.level})"
        )

    @property
    def data(self) -> Sequence[float]:
        """Zero-copy view of the stored elements (sorted when non-empty).

        A ``memoryview`` on the python backend, an ndarray slice on the
        numpy one — random-access, sliceable, iterable floats either way.
        The view aliases the arena: it is invalidated by the next write
        to this buffer's slot (take ``list(buf.data)`` to keep a copy).
        """
        return self._arena.view(self._slot, self._length)

    @property
    def slot(self) -> int:
        """The arena slot this buffer views."""
        return self._slot

    @property
    def is_empty(self) -> bool:
        return self.state is BufferState.EMPTY

    @property
    def is_full(self) -> bool:
        return self.state is BufferState.FULL

    @property
    def is_partial(self) -> bool:
        return self.state is BufferState.PARTIAL

    @property
    def total_weight(self) -> int:
        """Weight mass represented: ``len(data) * weight``."""
        return self._length * self.weight

    def populate(
        self,
        values: Sequence[float],
        weight: int,
        level: int,
        *,
        backend: KernelBackend | None = None,
    ) -> None:
        """Fill an empty buffer with (unsorted) values — the tail of New.

        Marks the buffer full when exactly ``capacity`` values are given,
        partial otherwise (the input stream ran dry mid-fill).  The
        values are sorted into the arena slot by the arena backend's sort
        kernel; the ``backend`` parameter is retained for API
        compatibility and must match the arena's backend when given.
        """
        if not self.is_empty:
            raise RuntimeError(f"cannot populate a non-empty buffer: {self!r}")
        if len(values) == 0:
            raise ValueError("cannot populate a buffer with zero values")
        if len(values) > self.capacity:
            raise ValueError(
                f"{len(values)} values exceed buffer capacity {self.capacity}"
            )
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        if level < 0:
            raise ValueError(f"level must be >= 0, got {level}")
        if backend is not None and backend is not self._arena.backend:
            raise ValueError(
                f"populate backend {backend.name!r} does not match the "
                f"arena backend {self._arena.backend.name!r}"
            )
        self._arena.write(self._slot, values, sort=True)
        self._length = len(values)
        self.weight = weight
        self.level = level
        self.state = (
            BufferState.FULL if len(values) == self.capacity else BufferState.PARTIAL
        )

    def store_collapse_output(
        self, values: Sequence[float], weight: int, level: int
    ) -> None:
        """Overwrite this buffer with a Collapse result (already sorted).

        ``values`` must be materialised (a list or a backend array), not a
        live view of this buffer's own slot — Collapse guarantees that by
        selecting the kept values before reclaiming its inputs.
        """
        if len(values) != self.capacity:
            raise ValueError(
                f"collapse output must have exactly {self.capacity} elements, "
                f"got {len(values)}"
            )
        self._arena.write(self._slot, values, sort=False)
        self._length = len(values)
        self.weight = weight
        self.level = level
        self.state = BufferState.FULL

    def restore(
        self,
        values: Sequence[float],
        weight: int,
        level: int,
        state: BufferState,
    ) -> None:
        """Reload checkpointed contents (already sorted) into the slot."""
        if len(values) > self.capacity:
            raise ValueError(
                f"{len(values)} values exceed buffer capacity {self.capacity}"
            )
        self._arena.write(self._slot, values, sort=False)
        self._length = len(values)
        self.weight = weight
        self.level = level
        self.state = state

    def mark_empty(self) -> None:
        """Reclaim the buffer (its contents were consumed by a Collapse)."""
        self._length = 0
        self.weight = 0
        self.level = 0
        self.state = BufferState.EMPTY

    def as_weighted(self) -> tuple[Sequence[float], int]:
        """View as a ``(sorted_values, weight)`` pair for merging/queries."""
        if self.is_empty:
            raise RuntimeError("an empty buffer has no weighted view")
        return self.data, self.weight
