"""Extreme-value quantiles in tiny memory (Section 7).

When the target quantile ``phi`` is close to 0 (or 1), the general-purpose
machinery is overkill: the paper observes that (a) the extreme order
statistics of a random sample can be maintained in a bounded heap, and (b)
the rank distribution of an extreme sample order statistic concentrates
*faster* than that of a central one, so the sample — and the retained
``k = ceil(phi * s)`` elements — can both be small.

The recipe: sample the stream at rate ``s / N`` and keep only the ``k``
smallest sampled values (symmetrically, the ``k`` largest for ``phi`` near
1); report the largest retained value, whose expected rank is ``phi * N``.
The sample size ``s`` is the smallest satisfying Stein's-lemma bound::

    exp(-s D(phi; phi-eps)) + exp(-s D(phi; phi+eps)) <= delta

(:func:`repro.stats.bounds.extreme_sample_size`).  Memory is ``k``
elements — compare ``b*k ~ eps^-1 polylog`` for the general algorithm; the
extreme-value benchmark quantifies the gap and locates the crossover as
``phi`` moves toward the median.

Knowing ``N`` (to set the rate) is inherent to this scheme — the paper
presents it for the known-N setting; pass an upper bound on N when the
exact length is unknown (the guarantee degrades gracefully: a larger N
under-samples, widening the failure probability, never the memory).
"""

from __future__ import annotations

import heapq
import math
import random
from collections.abc import Iterable
from typing import Any

from repro.core.arena import FLOAT_BYTES
from repro.kernels import (
    KernelBackend,
    backend_from_checkpoint,
    get_backend,
    is_nan,
    is_random_access,
    reject_text_batch,
)
from repro.sampling.rate import BernoulliSampler
from repro.stats.bounds import extreme_sample_size, stein_failure_bound

__all__ = ["ExtremeValueEstimator"]


class ExtremeValueEstimator:
    """Keep the k most extreme sampled elements; answer one extreme quantile.

    :param phi: the target quantile, near 0 or 1 (e.g. 0.01 or 0.995).
    :param eps: rank guarantee; must satisfy ``eps < min(phi, 1 - phi)``
        (otherwise the stream minimum/maximum answers in O(1) space and
        this estimator politely refuses).
    :param delta: failure probability.
    :param n: the (known or upper-bounded) stream length, used to set the
        sampling rate ``s / n``.
    :param seed: sampling-randomness seed.

    Example::

        est = ExtremeValueEstimator(phi=0.99, eps=0.001, delta=1e-4, n=10**7)
        for latency in stream:
            est.update(latency)
        p99 = est.query()
    """

    def __init__(
        self,
        phi: float,
        eps: float,
        delta: float,
        n: int,
        *,
        seed: int | None = None,
        rng: random.Random | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        if not 0.0 < phi < 1.0:
            raise ValueError(f"phi must be in (0, 1), got {phi}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        tail_phi = min(phi, 1.0 - phi)
        if not 0.0 < eps < tail_phi:
            raise ValueError(
                f"eps={eps} must be in (0, min(phi, 1-phi))={tail_phi}; for "
                "eps >= phi the stream minimum (maximum) is already an "
                "eps-approximate quantile in O(1) space"
            )
        self._phi = phi
        self._eps = eps
        self._delta = delta
        self._n = n
        self._low_tail = phi <= 0.5
        self._tail_phi = tail_phi
        planned = extreme_sample_size(tail_phi, eps, delta)
        # A sample cannot exceed the stream; when the Stein bound wants
        # more, sample everything (the guarantee then degrades — see
        # :attr:`achieved_delta`).
        self._sample_size = min(planned, n)
        self._k = max(1, math.ceil(tail_phi * self._sample_size))
        # The Bernoulli sample size fluctuates around s by ~sqrt(s); the
        # query renormalises k against the realised count, so the heap
        # keeps a small cushion beyond k to cover upward fluctuations.
        cushion = max(8, math.ceil(4.0 * math.sqrt(tail_phi * self._sample_size)))
        self._capacity = self._k + cushion
        self._backend = get_backend(backend)
        probability = min(1.0, self._sample_size / n)
        self._sampler = BernoulliSampler(
            probability, rng if rng is not None else self._backend.make_rng(seed)
        )
        # Max-heap of the `capacity` smallest sampled values (low tail) or
        # min-heap of the largest (high tail); Python's heapq is a
        # min-heap, so the low tail stores negated values.
        # replint: disable=buffer-arena -- heapq mutates a boxed list in
        # place; the heap is O(s) sample state, not the b*k data plane
        self._heap: list[float] = []
        self._seen = 0

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Consume one stream element (O(log k) worst case, O(1) typical)."""
        if is_nan(value):  # would poison the heap order
            raise ValueError("NaN values have no rank and cannot be summarised")
        self._seen += 1
        if self._sampler.offer(value) is None:
            return
        self._push(value)

    def _push(self, value: float) -> None:
        """Admit a sampled value into the bounded extreme heap."""
        key = -value if self._low_tail else value
        if len(self._heap) < self._capacity:
            heapq.heappush(self._heap, key)
        elif key > self._heap[0]:
            heapq.heapreplace(self._heap, key)

    def extend(self, values: Iterable[float]) -> None:
        """Consume many stream elements.

        Random-access inputs are NaN-scanned *before* any mutation, so a
        poisoned batch is rejected atomically (the scalar path's
        guarantee), then offered to the Bernoulli sampler as one batch —
        a single vectorised draw on the numpy backend; only the O(p * n)
        kept elements touch the heap.  One-shot iterators are necessarily
        checked element-by-element.
        """
        reject_text_batch(values)
        if is_random_access(values):
            values = self._backend.as_batch(values)
            if self._backend.batch_contains_nan(values):
                raise ValueError("NaN values have no rank and cannot be summarised")
            kept = self._sampler.offer_many(values)
            self._seen += len(values)
            for value in kept:
                self._push(value)
            return
        for value in values:
            self.update(value)

    # ------------------------------------------------------------------
    # Checkpointing (see repro.persist for the durable file format)
    # ------------------------------------------------------------------
    def to_state_dict(self) -> dict[str, Any]:
        """The estimator's complete restorable state (including RNG state)."""
        return {
            "kind": "extreme",
            "state_version": 1,
            "backend": self._backend.name,
            "phi": self._phi,
            "eps": self._eps,
            "delta": self._delta,
            "n": self._n,
            "sample_size": self._sample_size,
            "k": self._k,
            "capacity": self._capacity,
            "sampler": self._sampler.state_dict(),
            "heap": [float(v) for v in self._heap],
            "seen": self._seen,
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> "ExtremeValueEstimator":
        """Rebuild an estimator exactly as :meth:`to_state_dict` captured it."""
        est = object.__new__(cls)
        est._phi = float(state["phi"])
        est._eps = float(state["eps"])
        est._delta = float(state["delta"])
        est._n = int(state["n"])
        est._low_tail = est._phi <= 0.5
        est._tail_phi = min(est._phi, 1.0 - est._phi)
        est._sample_size = int(state["sample_size"])
        est._k = int(state["k"])
        est._capacity = int(state["capacity"])
        est._backend = backend_from_checkpoint(state.get("backend"))
        est._sampler = BernoulliSampler.from_state_dict(state["sampler"])
        heap = [float(v) for v in state["heap"]]
        heapq.heapify(heap)
        est._heap = heap
        est._seen = int(state["seen"])
        return est

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self) -> float:
        """The estimate: the k-th smallest (largest) sampled value.

        ``k`` is renormalised against the *realised* sample size
        (``k = ceil(phi * sampled)``), keeping the expected rank at
        ``phi * n`` despite Bernoulli fluctuation.  With probability at
        least ``1 - delta`` the rank lies within ``(phi +/- eps) * n``
        (provided the Stein sample fit the stream; see
        :attr:`achieved_delta`).
        """
        if not self._heap:
            raise ValueError("no sampled data yet; stream too short or unlucky")
        ordered = sorted(self._heap, reverse=True)  # most extreme last
        k_query = max(1, math.ceil(self._tail_phi * self._sampler.kept))
        index = min(k_query, len(ordered)) - 1
        key = ordered[index]
        return -key if self._low_tail else key

    @property
    def achieved_delta(self) -> float:
        """The failure probability actually attainable.

        Equals ``delta`` when the planned Stein sample fit the stream;
        larger when ``n`` was too short to support the requested
        (phi, eps, delta) and the estimator had to sample everything.
        """
        return max(
            self._delta, stein_failure_bound(self._sample_size, self._tail_phi, self._eps)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def phi(self) -> float:
        """Target quantile."""
        return self._phi

    @property
    def sample_size(self) -> int:
        """Planned sample size ``s`` from the Stein bound."""
        return self._sample_size

    @property
    def k(self) -> int:
        """The target order statistic within the sample: ``ceil(phi * s)``."""
        return self._k

    @property
    def memory_elements(self) -> int:
        """Element slots held: the heap's capacity (k plus a small cushion)."""
        return self._capacity

    @property
    def memory_bytes(self) -> int:
        """Peak bytes held: the heap's capacity at 8 bytes per float."""
        return self._capacity * FLOAT_BYTES

    @property
    def backend(self) -> KernelBackend:
        """The kernel backend this estimator runs on."""
        return self._backend

    @property
    def seen(self) -> int:
        """Elements consumed so far."""
        return self._seen

    @property
    def sampled(self) -> int:
        """Elements that entered the sample so far."""
        return self._sampler.kept
