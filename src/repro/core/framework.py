"""The buffer-pool engine shared by all estimators (Section 3).

:class:`CollapseEngine` owns the ``b`` physical buffers of ``k`` elements,
applies the collapse policy when the pool fills, and answers weighted
quantile queries over the surviving buffers.  It is deliberately unaware of
*sampling*: callers deposit already-chosen sample values together with their
weight and level, which is how the same engine backs

* the deterministic known-N algorithm (weight 1, level 0 deposits),
* the paper's unknown-N algorithm (weights/levels follow the non-uniform
  sampling schedule of Section 3.7),
* the parallel coordinator of Section 6 (buffers arrive pre-weighted from
  worker processors).

Buffer allocation is lazy: physical buffers are created one at a time as
needed, up to ``b`` (the simple amelioration Section 5 opens with).  An
optional *allocator* callback can delay allocation further — that hook is
how the Section 5 buffer-allocation schedules plug in.
"""

from __future__ import annotations

import bisect
from collections.abc import Callable, Sequence

from repro.core.buffers import Buffer, BufferState
from repro.core.operations import collapse_buffers, output_quantile
from repro.core.policy import POLICY_REGISTRY, CollapsePolicy, MRLPolicy, policy_from_name
from repro.core.tree import TreeTrace
from repro.stats.rank import quantile_position, weighted_select_many

__all__ = ["CollapseEngine"]

#: Decides, given (leaves_created, buffers_allocated), whether to allocate a
#: new physical buffer now (True) or reclaim space by collapsing (False).
AllocatorHook = Callable[[int, int], bool]


class CollapseEngine:
    """``b`` buffers of ``k`` elements driven by a collapse policy.

    :param b: maximum number of physical buffers.
    :param k: elements per buffer.
    :param policy: collapse policy; defaults to the paper's
        :class:`~repro.core.policy.MRLPolicy`.
    :param trace: when True, record the full collapse tree (test/diagnostic
        aid; costs O(#logical buffers) memory, so leave off in production).
    :param allocator: optional hook delaying physical-buffer allocation
        (Section 5 schedules); default allocates whenever below ``b``.
    :param alternate_even_offsets: keep the paper's alternation between the
        two even-weight Collapse offsets; disabling it exists only for the
        offset ablation benchmark.
    """

    def __init__(
        self,
        b: int,
        k: int,
        policy: CollapsePolicy | None = None,
        *,
        trace: bool = False,
        allocator: AllocatorHook | None = None,
        alternate_even_offsets: bool = True,
    ) -> None:
        if b < 2:
            raise ValueError(f"need at least 2 buffers, got b={b}")
        if k < 1:
            raise ValueError(f"buffer size must be >= 1, got k={k}")
        self._b = b
        self._k = k
        self._policy = policy if policy is not None else MRLPolicy()
        self._buffers: list[Buffer] = []
        self._trace = TreeTrace() if trace else None
        self._allocator = allocator
        self._alternate = alternate_even_offsets
        self._low_for_even = True
        self._leaves_created = 0
        self._max_collapse_level = -1
        self._collapse_count = 0
        self._collapse_weight_sum = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def b(self) -> int:
        """Maximum number of physical buffers."""
        return self._b

    @property
    def k(self) -> int:
        """Elements per buffer."""
        return self._k

    @property
    def policy(self) -> CollapsePolicy:
        """The collapse policy in force."""
        return self._policy

    @property
    def buffers_allocated(self) -> int:
        """Physical buffers allocated so far (lazy allocation)."""
        return len(self._buffers)

    @property
    def memory_elements(self) -> int:
        """Current element-slots of memory held: ``allocated * k``."""
        return len(self._buffers) * self._k

    @property
    def leaves_created(self) -> int:
        """Number of New buffers deposited so far."""
        return self._leaves_created

    @property
    def collapse_count(self) -> int:
        """Number of Collapse operations performed so far."""
        return self._collapse_count

    @property
    def collapse_weight_sum(self) -> int:
        """``W``: summed weights of all Collapse outputs (Section 4.2).

        Together with the heaviest live buffer this gives the Lemma 4
        error bound ``W/2 + w_max`` without tracing the whole tree.
        """
        return self._collapse_weight_sum

    def error_bound_elements(self) -> float:
        """Lemma 4 (weak form): rank-error bound of Output right now.

        ``(W/2 + w_max) * 1`` in weight units — weights are element counts,
        so this is directly comparable to ``eps * N``.
        """
        live = [buf.weight for buf in self._buffers if buf.is_full]
        w_max = max(live, default=0)
        return self._collapse_weight_sum / 2.0 + w_max

    @property
    def max_collapse_level(self) -> int:
        """Highest level of any Collapse output (-1 before any collapse).

        The unknown-N estimator watches this to trigger sampling onset and
        the successive rate doublings of Section 3.7.
        """
        return self._max_collapse_level

    @property
    def trace(self) -> TreeTrace | None:
        """The collapse-tree trace, when enabled."""
        return self._trace

    def full_buffers(self) -> list[Buffer]:
        """The currently full buffers (the root's children-to-be)."""
        return [buf for buf in self._buffers if buf.is_full]

    @property
    def total_weight(self) -> int:
        """Weight mass held in full buffers: ``sum(len * weight)``."""
        return sum(buf.total_weight for buf in self._buffers if buf.is_full)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def deposit(self, values: Sequence[float], weight: int, level: int) -> None:
        """Complete a New operation: store ``k`` chosen values.

        Collapses (or allocates) first if no buffer is empty.  The caller —
        the sampling layer — guarantees ``len(values) == k``; partially
        filled buffers never enter the pool (in-flight values are passed to
        :meth:`query` as extras instead, preserving query-at-any-time).
        """
        if len(values) != self._k:
            raise ValueError(
                f"deposit needs exactly k={self._k} values, got {len(values)}"
            )
        target = self._acquire_empty()
        target.populate(list(values), weight, level)
        self._leaves_created += 1
        if self._trace is not None:
            target.node_id = self._trace.new_leaf(weight, level)
        if self._policy.eager:
            self._collapse_eagerly()

    def _collapse_eagerly(self) -> None:
        """Munro-Paterson discipline: merge any two same-level buffers now."""
        while True:
            by_level: dict[int, list[Buffer]] = {}
            for buf in self._buffers:
                if buf.is_full:
                    by_level.setdefault(buf.level, []).append(buf)
            duplicated = [lvl for lvl, bufs in by_level.items() if len(bufs) >= 2]
            if not duplicated:
                return
            self._collapse(by_level[min(duplicated)][:2])

    def ensure_empty(self) -> None:
        """Make an empty buffer available (allocating or collapsing now).

        Estimators call this at the *start* of a New operation so that any
        collapse — and therefore any sampling-rate doubling it triggers —
        happens before the New's rate is fixed (Section 3.7 ordering).
        """
        self._acquire_empty()

    def _acquire_empty(self) -> Buffer:
        """Return an empty buffer, allocating or collapsing as needed."""
        for buf in self._buffers:
            if buf.is_empty:
                return buf
        may_allocate = len(self._buffers) < self._b and (
            self._allocator is None
            or self._allocator(self._leaves_created, len(self._buffers))
        )
        if may_allocate or len(self._buffers) < 2:
            if len(self._buffers) >= self._b:
                raise RuntimeError(
                    "allocator refused to allocate but fewer than 2 buffers exist"
                )
            buf = Buffer(self._k)
            self._buffers.append(buf)
            return buf
        self.collapse_once()
        for buf in self._buffers:
            if buf.is_empty:
                return buf
        raise AssertionError("collapse freed no buffer")

    def collapse_once(self) -> Buffer:
        """Run one Collapse chosen by the policy; returns the output buffer."""
        full = self.full_buffers()
        chosen = self._policy.choose(full)
        return self._collapse(chosen)

    def final_collapse(self) -> Buffer | None:
        """Collapse *all* full buffers into one (Section 6 worker hand-off).

        No-op (returns the sole buffer or None) when fewer than two buffers
        are full.
        """
        full = self.full_buffers()
        if len(full) < 2:
            return full[0] if full else None
        return self._collapse(full)

    def _collapse(self, chosen: Sequence[Buffer]) -> Buffer:
        child_ids = [buf.node_id for buf in chosen]
        output = collapse_buffers(chosen, low_for_even=self._low_for_even)
        if self._alternate and output.weight % 2 == 0:
            self._low_for_even = not self._low_for_even
        self._collapse_count += 1
        self._collapse_weight_sum += output.weight
        self._max_collapse_level = max(self._max_collapse_level, output.level)
        if self._trace is not None:
            output.node_id = self._trace.new_collapse(
                [cid for cid in child_ids if cid is not None],
                output.weight,
                output.level,
            )
        return output

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The engine's full restorable state (buffers, flags, counters).

        Checkpointing covers the algorithmic state only: a trace or a
        custom allocator hook cannot be serialised, and a policy outside
        the built-in registry cannot be reconstructed by name, so all
        three are refused loudly instead of silently dropped.
        """
        if self._trace is not None:
            raise ValueError("a traced engine cannot be checkpointed; disable trace")
        if self._allocator is not None:
            raise ValueError(
                "an engine with a custom allocator hook cannot be checkpointed"
            )
        if type(self._policy) is not POLICY_REGISTRY.get(self._policy.name):
            raise ValueError(
                f"policy {type(self._policy).__name__!r} is not a registered "
                "built-in policy and cannot be checkpointed"
            )
        return {
            "b": self._b,
            "k": self._k,
            "policy": self._policy.name,
            "low_for_even": self._low_for_even,
            "alternate_even_offsets": self._alternate,
            "leaves_created": self._leaves_created,
            "max_collapse_level": self._max_collapse_level,
            "collapse_count": self._collapse_count,
            "collapse_weight_sum": self._collapse_weight_sum,
            "buffers": [
                {
                    "data": list(buf.data),
                    "weight": buf.weight,
                    "level": buf.level,
                    "state": buf.state.value,
                }
                for buf in self._buffers
            ],
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "CollapseEngine":
        """Rebuild an engine exactly as :meth:`state_dict` captured it."""
        engine = cls(
            int(state["b"]),
            int(state["k"]),
            policy_from_name(state["policy"]),
            alternate_even_offsets=bool(state["alternate_even_offsets"]),
        )
        engine._low_for_even = bool(state["low_for_even"])
        engine._leaves_created = int(state["leaves_created"])
        engine._max_collapse_level = int(state["max_collapse_level"])
        engine._collapse_count = int(state["collapse_count"])
        engine._collapse_weight_sum = int(state["collapse_weight_sum"])
        for entry in state["buffers"]:
            buf = Buffer(engine._k)
            buf.data = [float(v) for v in entry["data"]]
            buf.weight = int(entry["weight"])
            buf.level = int(entry["level"])
            buf.state = BufferState(entry["state"])
            engine._buffers.append(buf)
        return engine

    # ------------------------------------------------------------------
    # Queries (the Output operation; never modifies state)
    # ------------------------------------------------------------------
    def weighted_view(
        self, extra: Sequence[tuple[Sequence[float], int]] = ()
    ) -> list[tuple[Sequence[float], int]]:
        """The ``(sorted_values, weight)`` pairs Output would consume."""
        view: list[tuple[Sequence[float], int]] = [
            buf.as_weighted() for buf in self._buffers if buf.is_full
        ]
        view.extend(extra)
        return view

    def query(
        self, phi: float, extra: Sequence[tuple[Sequence[float], int]] = ()
    ) -> float:
        """The weighted phi-quantile of the engine's contents plus extras."""
        return output_quantile(self.weighted_view(extra), phi)

    def query_many(
        self,
        phis: Sequence[float],
        extra: Sequence[tuple[Sequence[float], int]] = (),
    ) -> list[float]:
        """Several quantiles in one merge pass (order preserved)."""
        view = self.weighted_view(extra)
        total = sum(len(data) * weight for data, weight in view)
        if total <= 0:
            raise ValueError("Output invoked with no data")
        positions = [quantile_position(phi, total) for phi in phis]
        return weighted_select_many(view, positions)

    def weighted_rank(
        self, value: float, extra: Sequence[tuple[Sequence[float], int]] = ()
    ) -> int:
        """The inverse query: weighted count of stored mass <= ``value``.

        Since total weight equals the stream length, this estimates the
        rank of ``value`` in the stream, with the same error structure as
        the forward quantile query.
        """
        rank = 0
        for data, weight in self.weighted_view(extra):
            rank += bisect.bisect_right(data, value) * weight
        return rank
