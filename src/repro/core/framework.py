"""The buffer-pool engine shared by all estimators (Section 3).

:class:`CollapseEngine` owns the ``b`` physical buffers of ``k`` elements,
applies the collapse policy when the pool fills, and answers weighted
quantile queries over the surviving buffers.  It is deliberately unaware of
*sampling*: callers deposit already-chosen sample values together with their
weight and level, which is how the same engine backs

* the deterministic known-N algorithm (weight 1, level 0 deposits),
* the paper's unknown-N algorithm (weights/levels follow the non-uniform
  sampling schedule of Section 3.7),
* the parallel coordinator of Section 6 (buffers arrive pre-weighted from
  worker processors).

Buffer allocation is lazy: physical buffers are created one at a time as
needed, up to ``b`` (the simple amelioration Section 5 opens with).  An
optional *allocator* callback can delay allocation further — that hook is
how the Section 5 buffer-allocation schedules plug in.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.core.arena import BUFFER_METADATA_BYTES, BufferArena
from repro.core.buffers import Buffer, BufferState
from repro.core.operations import collapse_buffers
from repro.core.policy import POLICY_REGISTRY, CollapsePolicy, MRLPolicy, policy_from_name
from repro.core.tree import TreeTrace
from repro.kernels import (
    KernelBackend,
    MergedView,
    backend_from_checkpoint,
    get_backend,
)
from repro.stats.rank import quantile_position

__all__ = ["CollapseEngine"]

#: Decides, given (leaves_created, buffers_allocated), whether to allocate a
#: new physical buffer now (True) or reclaim space by collapsing (False).
AllocatorHook = Callable[[int, int], bool]


class CollapseEngine:
    """``b`` buffers of ``k`` elements driven by a collapse policy.

    :param b: maximum number of physical buffers.
    :param k: elements per buffer.
    :param policy: collapse policy; defaults to the paper's
        :class:`~repro.core.policy.MRLPolicy`.
    :param trace: when True, record the full collapse tree (test/diagnostic
        aid; costs O(#logical buffers) memory, so leave off in production).
    :param allocator: optional hook delaying physical-buffer allocation
        (Section 5 schedules); default allocates whenever below ``b``.
    :param alternate_even_offsets: keep the paper's alternation between the
        two even-weight Collapse offsets; disabling it exists only for the
        offset ablation benchmark.
    :param backend: kernel backend (a name, an instance, or None) for the
        Collapse and query kernels; None resolves ``REPRO_BACKEND`` and
        falls back to the pure-python reference backend.
    :param cache: memoise the merged weighted view of the full buffers
        between mutations, so repeated queries cost two binary searches
        instead of a full re-merge.  On by default; turning it off exists
        for the cache ablation benchmark and to shave O(b*k) memory.
    :param arena_buffer: optional raw writable byte buffer backing the
        arena (shared-memory mode; see
        :class:`~repro.core.arena.BufferArena` and
        :mod:`repro.runtime.shm`).  ``None`` allocates on the heap.
    """

    def __init__(
        self,
        b: int,
        k: int,
        policy: CollapsePolicy | None = None,
        *,
        trace: bool = False,
        allocator: AllocatorHook | None = None,
        alternate_even_offsets: bool = True,
        backend: str | KernelBackend | None = None,
        cache: bool = True,
        arena_buffer: Any | None = None,
    ) -> None:
        if b < 2:
            raise ValueError(f"need at least 2 buffers, got b={b}")
        if k < 1:
            raise ValueError(f"buffer size must be >= 1, got k={k}")
        self._b = b
        self._k = k
        self._policy = policy if policy is not None else MRLPolicy()
        self._buffers: list[Buffer] = []
        self._trace = TreeTrace() if trace else None
        self._allocator = allocator
        self._alternate = alternate_even_offsets
        self._low_for_even = True
        self._leaves_created = 0
        self._max_collapse_level = -1
        self._collapse_count = 0
        self._collapse_weight_sum = 0
        self._backend = get_backend(backend)
        # One contiguous b*k float64 store; every buffer is a view into it.
        # With ``arena_buffer`` the store lives in an externally owned
        # shared-memory mapping instead of the heap (repro.runtime.shm).
        self._arena = BufferArena(
            b, k, backend=self._backend, buffer=arena_buffer
        )
        self._cache_enabled = cache
        self._version = 0
        self._cached_view: MergedView | None = None
        self._cached_version = -1
        # (version, extras object, combined view) — valid while the pool is
        # unmutated and the caller passes the *same* extras view object.
        self._combined_cache: tuple[int, MergedView, MergedView] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def b(self) -> int:
        """Maximum number of physical buffers."""
        return self._b

    @property
    def k(self) -> int:
        """Elements per buffer."""
        return self._k

    @property
    def policy(self) -> CollapsePolicy:
        """The collapse policy in force."""
        return self._policy

    @property
    def backend(self) -> KernelBackend:
        """The kernel backend performing Collapse and query merges."""
        return self._backend

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every deposit and Collapse.

        Estimators key their own derived caches (e.g. the staged-extras
        view) on this, so anything computed from the buffer pool can be
        invalidated without the engine knowing it exists.
        """
        return self._version

    @property
    def buffers_allocated(self) -> int:
        """Physical buffers allocated so far (lazy allocation)."""
        return len(self._buffers)

    @property
    def arena(self) -> BufferArena:
        """The columnar arena holding every buffer's elements."""
        return self._arena

    @property
    def memory_elements(self) -> int:
        """Current element-slots of memory in use: ``allocated * k``.

        Buffer *views* are still allocated lazily, so this tracks the
        Section 5 allocation schedules; the byte-accurate peak (the whole
        preallocated arena) is :attr:`memory_bytes`.
        """
        return len(self._buffers) * self._k

    @property
    def memory_bytes(self) -> int:
        """Peak bytes of element storage plus buffer metadata.

        Exactly ``b * k * 8`` arena bytes (preallocated, so peak equals
        current) plus O(b) per-buffer metadata — the paper's space bound,
        in bytes.
        """
        return self._arena.nbytes + len(self._buffers) * BUFFER_METADATA_BYTES

    @property
    def leaves_created(self) -> int:
        """Number of New buffers deposited so far."""
        return self._leaves_created

    @property
    def collapse_count(self) -> int:
        """Number of Collapse operations performed so far."""
        return self._collapse_count

    @property
    def collapse_weight_sum(self) -> int:
        """``W``: summed weights of all Collapse outputs (Section 4.2).

        Together with the heaviest live buffer this gives the Lemma 4
        error bound ``W/2 + w_max`` without tracing the whole tree.
        """
        return self._collapse_weight_sum

    def error_bound_elements(self) -> float:
        """Lemma 4 (weak form): rank-error bound of Output right now.

        ``(W/2 + w_max) * 1`` in weight units — weights are element counts,
        so this is directly comparable to ``eps * N``.
        """
        live = [buf.weight for buf in self._buffers if buf.is_full]
        w_max = max(live, default=0)
        return self._collapse_weight_sum / 2.0 + w_max

    @property
    def max_collapse_level(self) -> int:
        """Highest level of any Collapse output (-1 before any collapse).

        The unknown-N estimator watches this to trigger sampling onset and
        the successive rate doublings of Section 3.7.
        """
        return self._max_collapse_level

    @property
    def trace(self) -> TreeTrace | None:
        """The collapse-tree trace, when enabled."""
        return self._trace

    def full_buffers(self) -> list[Buffer]:
        """The currently full buffers (the root's children-to-be)."""
        return [buf for buf in self._buffers if buf.is_full]

    @property
    def total_weight(self) -> int:
        """Weight mass held in full buffers: ``sum(len * weight)``."""
        return sum(buf.total_weight for buf in self._buffers if buf.is_full)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def deposit(self, values: Sequence[float], weight: int, level: int) -> None:
        """Complete a New operation: store ``k`` chosen values.

        Collapses (or allocates) first if no buffer is empty.  The caller —
        the sampling layer — guarantees ``len(values) == k``; partially
        filled buffers never enter the pool (in-flight values are passed to
        :meth:`query` as extras instead, preserving query-at-any-time).
        """
        if len(values) != self._k:
            raise ValueError(
                f"deposit needs exactly k={self._k} values, got {len(values)}"
            )
        target = self._acquire_empty()
        target.populate(values, weight, level, backend=self._backend)
        self._version += 1
        self._leaves_created += 1
        if self._trace is not None:
            target.node_id = self._trace.new_leaf(weight, level)
        if self._policy.eager:
            self._collapse_eagerly()

    def _collapse_eagerly(self) -> None:
        """Munro-Paterson discipline: merge any two same-level buffers now."""
        while True:
            by_level: dict[int, list[Buffer]] = {}
            for buf in self._buffers:
                if buf.is_full:
                    by_level.setdefault(buf.level, []).append(buf)
            duplicated = [lvl for lvl, bufs in by_level.items() if len(bufs) >= 2]
            if not duplicated:
                return
            self._collapse(by_level[min(duplicated)][:2])

    def ensure_empty(self) -> None:
        """Make an empty buffer available (allocating or collapsing now).

        Estimators call this at the *start* of a New operation so that any
        collapse — and therefore any sampling-rate doubling it triggers —
        happens before the New's rate is fixed (Section 3.7 ordering).
        """
        self._acquire_empty()

    def _acquire_empty(self) -> Buffer:
        """Return an empty buffer, allocating or collapsing as needed."""
        for buf in self._buffers:
            if buf.is_empty:
                return buf
        may_allocate = len(self._buffers) < self._b and (
            self._allocator is None
            or self._allocator(self._leaves_created, len(self._buffers))
        )
        if may_allocate or len(self._buffers) < 2:
            if len(self._buffers) >= self._b:
                raise RuntimeError(
                    "allocator refused to allocate but fewer than 2 buffers exist"
                )
            buf = Buffer(self._k, arena=self._arena, slot=len(self._buffers))
            self._buffers.append(buf)
            return buf
        self.collapse_once()
        for buf in self._buffers:
            if buf.is_empty:
                return buf
        raise AssertionError("collapse freed no buffer")

    def collapse_once(self) -> Buffer:
        """Run one Collapse chosen by the policy; returns the output buffer."""
        full = self.full_buffers()
        chosen = self._policy.choose(full)
        return self._collapse(chosen)

    def final_collapse(self) -> Buffer | None:
        """Collapse *all* full buffers into one (Section 6 worker hand-off).

        No-op (returns the sole buffer or None) when fewer than two buffers
        are full.
        """
        full = self.full_buffers()
        if len(full) < 2:
            return full[0] if full else None
        return self._collapse(full)

    def _collapse(self, chosen: Sequence[Buffer]) -> Buffer:
        child_ids = [buf.node_id for buf in chosen]
        output = collapse_buffers(
            chosen, low_for_even=self._low_for_even, backend=self._backend
        )
        self._version += 1
        if self._alternate and output.weight % 2 == 0:
            self._low_for_even = not self._low_for_even
        self._collapse_count += 1
        self._collapse_weight_sum += output.weight
        self._max_collapse_level = max(self._max_collapse_level, output.level)
        if self._trace is not None:
            output.node_id = self._trace.new_collapse(
                [cid for cid in child_ids if cid is not None],
                output.weight,
                output.level,
            )
        return output

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """The engine's full restorable state (buffers, flags, counters).

        Checkpointing covers the algorithmic state only: a trace or a
        custom allocator hook cannot be serialised, and a policy outside
        the built-in registry cannot be reconstructed by name, so all
        three are refused loudly instead of silently dropped.
        """
        if self._trace is not None:
            raise ValueError("a traced engine cannot be checkpointed; disable trace")
        if self._allocator is not None:
            raise ValueError(
                "an engine with a custom allocator hook cannot be checkpointed"
            )
        if type(self._policy) is not POLICY_REGISTRY.get(self._policy.name):
            raise ValueError(
                f"policy {type(self._policy).__name__!r} is not a registered "
                "built-in policy and cannot be checkpointed"
            )
        return {
            "b": self._b,
            "k": self._k,
            "policy": self._policy.name,
            "low_for_even": self._low_for_even,
            "alternate_even_offsets": self._alternate,
            "leaves_created": self._leaves_created,
            "max_collapse_level": self._max_collapse_level,
            "collapse_count": self._collapse_count,
            "collapse_weight_sum": self._collapse_weight_sum,
            "backend": self._backend.name,
            "buffers": [
                {
                    # replint: disable=buffer-arena -- state dicts are the
                    # plain-data contract; repro.persist re-hoists columns
                    "data": self._backend.tolist(buf.data),
                    "weight": buf.weight,
                    "level": buf.level,
                    "state": buf.state.value,
                }
                for buf in self._buffers
            ],
        }

    @classmethod
    def from_state_dict(
        cls, state: dict[str, Any], *, backend: str | KernelBackend | None = None
    ) -> "CollapseEngine":
        """Rebuild an engine exactly as :meth:`state_dict` captured it.

        ``backend`` overrides the checkpointed backend name (absent in
        pre-kernel checkpoints, which default to ``python``) — buffer
        contents are backend-agnostic plain floats, so a checkpoint taken
        under one backend restores cleanly under another.  A checkpointed
        backend that is unavailable on the restoring host degrades to the
        pure-python reference backend with a warning (an explicit
        ``backend=`` request still raises).
        """
        if backend is None:
            backend = backend_from_checkpoint(state.get("backend"))
        engine = cls(
            int(state["b"]),
            int(state["k"]),
            policy_from_name(state["policy"]),
            alternate_even_offsets=bool(state["alternate_even_offsets"]),
            backend=backend,
        )
        engine._low_for_even = bool(state["low_for_even"])
        engine._leaves_created = int(state["leaves_created"])
        engine._max_collapse_level = int(state["max_collapse_level"])
        engine._collapse_count = int(state["collapse_count"])
        engine._collapse_weight_sum = int(state["collapse_weight_sum"])
        for entry in state["buffers"]:
            buf = Buffer(engine._k, arena=engine._arena, slot=len(engine._buffers))
            buf.restore(
                [float(v) for v in entry["data"]],
                int(entry["weight"]),
                int(entry["level"]),
                BufferState(entry["state"]),
            )
            engine._buffers.append(buf)
        return engine

    # ------------------------------------------------------------------
    # Queries (the Output operation; never modifies state)
    # ------------------------------------------------------------------
    def weighted_view(
        self, extra: Sequence[tuple[Sequence[float], int]] = ()
    ) -> list[tuple[Sequence[float], int]]:
        """The ``(sorted_values, weight)`` pairs Output would consume."""
        view: list[tuple[Sequence[float], int]] = [
            buf.as_weighted() for buf in self._buffers if buf.is_full
        ]
        view.extend(extra)
        return view

    def merged_full_view(self) -> MergedView:
        """The flattened weighted view of the full buffers, memoised.

        Rebuilt (through the backend's merge kernel) only when a deposit
        or Collapse has mutated the pool since the last query; between
        mutations every query is a binary search over this view.
        """
        if self._cache_enabled and self._cached_version == self._version:
            assert self._cached_view is not None
            return self._cached_view
        view = self._backend.merged_view(
            [buf.as_weighted() for buf in self._buffers if buf.is_full]
        )
        if self._cache_enabled:
            self._cached_view = view
            self._cached_version = self._version
        return view

    def extras_view(
        self, extra: Sequence[tuple[Sequence[float], int]]
    ) -> MergedView | None:
        """Merge query-time extras (partial buffer, in-flight samples).

        Estimators that can cache this themselves (extras only change
        when ``n`` does) pass the resulting :class:`MergedView` straight
        back into :meth:`query` / :meth:`query_many` / :meth:`weighted_rank`.
        """
        if isinstance(extra, MergedView):
            return extra if len(extra) else None
        pairs = [(data, weight) for data, weight in extra if len(data)]
        if not pairs:
            return None
        return self._backend.merged_view(pairs)

    def _combined_view(self, extras: MergedView | None) -> MergedView:
        """Full buffers and extras merged into one flattened view.

        Memoised per (pool version, extras object): estimators cache
        their extras view between updates and pass the same object back,
        so a burst of queries pays the merge once and then binary-searches.
        """
        if extras is None or len(extras) == 0:
            return self.merged_full_view()
        cached = self._combined_cache
        if (
            self._cache_enabled
            and cached is not None
            and cached[0] == self._version
            and cached[1] is extras
        ):
            return cached[2]
        combined = self._backend.merge_views(self.merged_full_view(), extras)
        if self._cache_enabled:
            self._combined_cache = (self._version, extras, combined)
        return combined

    def query(
        self,
        phi: float,
        extra: Sequence[tuple[Sequence[float], int]] | MergedView = (),
    ) -> float:
        """The weighted phi-quantile of the engine's contents plus extras."""
        return self.query_many([phi], extra)[0]

    def query_many(
        self,
        phis: Sequence[float],
        extra: Sequence[tuple[Sequence[float], int]] | MergedView = (),
    ) -> list[float]:
        """Several quantiles against the memoised view (order preserved)."""
        combined = self._combined_view(self.extras_view(extra))
        total = combined.total_weight
        if total <= 0:
            raise ValueError("Output invoked with no data")
        positions = [quantile_position(phi, total) for phi in phis]
        return combined.select_many(positions)

    def weighted_rank(
        self,
        value: float,
        extra: Sequence[tuple[Sequence[float], int]] | MergedView = (),
    ) -> int:
        """The inverse query: weighted count of stored mass <= ``value``.

        Since total weight equals the stream length, this estimates the
        rank of ``value`` in the stream, with the same error structure as
        the forward quantile query.
        """
        return self._combined_view(self.extras_view(extra)).cum_at(value)
