"""The known-N comparator: MRL98's algorithm with upfront uniform sampling.

When the stream length ``N`` is known in advance, the sampling rate can be
fixed once: the planner (:func:`repro.core.params.plan_known_n`) picks the
cheapest of *store everything*, *deterministic tree*, or *uniform sampling
feeding the tree*.  This is the algorithm the paper measures its unknown-N
scheme against in Table 1 and Figure 4 — the new algorithm's promise is to
match it to within a factor of about two without ever being told N.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from typing import Any

from repro.core.arena import FLOAT_BYTES
from repro.core.framework import CollapseEngine
from repro.core.params import KnownNPlan, plan_known_n
from repro.core.policy import CollapsePolicy, policy_from_name
from repro.kernels import (
    KernelBackend,
    MergedView,
    backend_from_checkpoint,
    get_backend,
    is_nan,
    is_random_access,
    reject_text_batch,
    rng_from_state,
    rng_state_dict,
)
from repro.sampling.block import BlockSampler

__all__ = ["KnownNQuantiles"]


class KnownNQuantiles:
    """Single-pass eps-approximate quantiles of a stream of known length.

    :param eps: rank-approximation guarantee.
    :param delta: failure probability of the sampling step (irrelevant when
        the plan turns out deterministic).
    :param n: the declared stream length; feeding more than ``n`` elements
        raises, since the fixed sampling rate was sized for ``n``.
    :param plan: explicit plan; overrides planning from (eps, delta, n).
    """

    def __init__(
        self,
        eps: float | None = None,
        delta: float | None = None,
        n: int | None = None,
        *,
        plan: KnownNPlan | None = None,
        policy: CollapsePolicy | None = None,
        seed: int | None = None,
        rng: random.Random | None = None,
        trace: bool = False,
        backend: str | KernelBackend | None = None,
    ) -> None:
        if plan is None:
            if eps is None or delta is None or n is None:
                raise ValueError("provide either (eps, delta, n) or an explicit plan")
            plan = plan_known_n(eps, delta, n, policy=policy)
        self._plan = plan
        self._backend = get_backend(backend)
        self._engine = CollapseEngine(
            plan.b, plan.k, policy, trace=trace, backend=self._backend
        )
        self._rng = rng if rng is not None else self._backend.make_rng(seed)
        self._sampler = BlockSampler(rate=plan.rate, rng=self._rng)
        # replint: disable=buffer-arena -- O(k) staging for the buffer
        # currently filling; deposit copies it into the arena at k elements
        self._staged: list[float] = []
        self._n = 0
        self._extras_cache: MergedView | None = None
        self._extras_cache_key: tuple[int, int] = (-1, -1)

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Consume one stream element."""
        if is_nan(value):  # would poison the sorted buffers
            raise ValueError("NaN values have no rank and cannot be summarised")
        if self._n >= self._plan.n:
            raise RuntimeError(
                f"stream exceeded its declared length n={self._plan.n}; "
                "the known-N algorithm's fixed sampling rate is sized for n "
                "(this is precisely the limitation the unknown-N algorithm removes)"
            )
        self._n += 1
        chosen = self._sampler.offer(value)
        if chosen is None:
            return
        self._staged.append(chosen)
        if len(self._staged) == self._engine.k:
            self._engine.deposit(self._staged, self._plan.rate, level=0)
            self._staged = []

    def extend(self, values: Iterable[float]) -> None:
        """Consume many stream elements.

        Random-access inputs (lists, arrays, numpy arrays) take the bulk
        path (one RNG draw per sampling block); other iterables stream
        element-by-element.
        """
        reject_text_batch(values)
        if is_random_access(values):
            self.update_batch(values)  # type: ignore[arg-type]
            return
        for value in values:
            self.update(value)

    def update_batch(self, values: Sequence[float]) -> None:
        """Bulk-ingest a random-access batch (fixed rate; simpler than
        the unknown-N version since the rate never changes mid-batch)."""
        reject_text_batch(values)
        values = self._backend.as_batch(values)
        if self._backend.batch_contains_nan(values):
            raise ValueError("NaN values have no rank and cannot be summarised")
        if self._n + len(values) > self._plan.n:
            raise RuntimeError(
                f"stream would exceed its declared length n={self._plan.n}; "
                "the known-N algorithm's fixed sampling rate is sized for n"
            )
        rate = self._plan.rate
        total = len(values)
        index = 0
        while index < total:
            needed = (
                (self._engine.k - len(self._staged)) * rate
                - self._sampler.seen_in_block
            )
            stop = min(index + needed, total)
            chosen = self._sampler.offer_window(
                values, index, stop, backend=self._backend
            )
            self._n += stop - index
            index = stop
            if not self._staged and len(chosen) == self._engine.k:
                # Whole-buffer window: deposit the backend-native result
                # into the arena without a staging copy.
                self._engine.deposit(chosen, rate, level=0)
            elif len(chosen):
                # replint: disable=buffer-arena -- cold path: the window
                # straddled an open block, so the partial result is staged
                self._staged.extend(self._backend.tolist(chosen))
                if len(self._staged) == self._engine.k:
                    self._engine.deposit(self._staged, rate, level=0)
                    self._staged = []

    # ------------------------------------------------------------------
    # Checkpointing (see repro.persist for the durable file format)
    # ------------------------------------------------------------------
    def to_state_dict(self) -> dict[str, Any]:
        """The estimator's complete restorable state (including RNG state)."""
        return {
            "kind": "known_n",
            "state_version": 1,
            "backend": self._backend.name,
            "plan": {
                "eps": self._plan.eps,
                "delta": self._plan.delta,
                "n": self._plan.n,
                "b": self._plan.b,
                "k": self._plan.k,
                "h": self._plan.h,
                "alpha": self._plan.alpha,
                "rate": self._plan.rate,
                "exact": self._plan.exact,
            },
            "engine": self._engine.state_dict(),
            "rng": rng_state_dict(self._rng),
            "sampler": self._sampler.state_dict(),
            "staged": list(self._staged),
            "n": self._n,
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> "KnownNQuantiles":
        """Rebuild an estimator exactly as :meth:`to_state_dict` captured it."""
        plan = KnownNPlan(
            eps=float(state["plan"]["eps"]),
            delta=float(state["plan"]["delta"]),
            n=int(state["plan"]["n"]),
            b=int(state["plan"]["b"]),
            k=int(state["plan"]["k"]),
            h=int(state["plan"]["h"]),
            alpha=float(state["plan"]["alpha"]),
            rate=int(state["plan"]["rate"]),
            exact=bool(state["plan"]["exact"]),
        )
        est = cls(
            plan=plan,
            policy=policy_from_name(state["engine"]["policy"]),
            backend=backend_from_checkpoint(state.get("backend")),
        )
        est._engine = CollapseEngine.from_state_dict(
            state["engine"], backend=est._backend
        )
        est._rng = rng_from_state(state["rng"])
        est._sampler = BlockSampler.from_state_dict(state["sampler"], est._rng)
        est._staged = [float(v) for v in state["staged"]]
        est._n = int(state["n"])
        return est

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _extras(self) -> list[tuple[Sequence[float], int]]:
        extras: list[tuple[Sequence[float], int]] = []
        if self._staged:
            extras.append((sorted(self._staged), self._plan.rate))
        pending = self._sampler.pending()
        if pending is not None:
            candidate, seen = pending
            extras.append(([candidate], seen))
        return extras

    def _extras_view(self) -> MergedView:
        """Merged view of the in-flight extras, cached between updates."""
        key = (self._n, self._engine.version)
        if self._extras_cache is None or self._extras_cache_key != key:
            self._extras_cache = self._backend.merged_view(self._extras())
            self._extras_cache_key = key
        return self._extras_cache

    def query(self, phi: float) -> float:
        """An eps-approximate phi-quantile of everything seen so far."""
        if self._n == 0:
            raise ValueError("no data has been observed yet")
        return self._engine.query(phi, self._extras_view())

    def query_many(self, phis: Sequence[float]) -> list[float]:
        """Several quantiles in one pass over the summary (order preserved)."""
        if self._n == 0:
            raise ValueError("no data has been observed yet")
        return self._engine.query_many(phis, self._extras_view())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def plan(self) -> KnownNPlan:
        """The (b, k, rate) plan in force."""
        return self._plan

    @property
    def n(self) -> int:
        """Elements consumed so far."""
        return self._n

    def __len__(self) -> int:
        return self._n

    @property
    def memory_elements(self) -> int:
        """Element slots held (allocated buffers x k)."""
        return self._engine.memory_elements

    @property
    def memory_bytes(self) -> int:
        """Peak bytes held: the engine's ``b*k*8`` arena + O(b) metadata
        + the in-flight staging elements."""
        return self._engine.memory_bytes + FLOAT_BYTES * len(self._staged)

    @property
    def total_weight(self) -> int:
        """Weight mass a query would consume; always equals :attr:`n`."""
        return self._engine.total_weight + sum(
            len(data) * weight for data, weight in self._extras()
        )

    @property
    def engine(self) -> CollapseEngine:
        """The underlying buffer engine (tests, diagnostics)."""
        return self._engine

    @property
    def backend(self) -> KernelBackend:
        """The kernel backend this estimator runs on."""
        return self._backend
