"""The columnar buffer arena: one contiguous float store for all buffers.

MRL99's claim is that ``b * k`` *elements* of working memory suffice — so
the reproduction should pay ``b * k * 8`` *bytes*, not ``b * k`` boxed
PyObjects.  :class:`BufferArena` preallocates a single contiguous float64
store through the kernel backend (an ``array('d')`` on the python backend,
one ``numpy.float64`` ndarray on the numpy one) and hands out zero-copy
slot views; :class:`~repro.core.buffers.Buffer` is a typed view (slot,
length, weight, level, state) into it.

Collapse writing its output back into one input's slot ("Y ... physically
occupies space corresponding to one of them", Section 3.2) then means the
peak element storage is *provably* the arena allocation: ``slots *
capacity * 8`` bytes plus O(b) per-buffer metadata, which is what the
engine's ``memory_bytes`` property reports.

Deliberately dumb: the arena owns bytes, not lifecycle.  Which slots are
live, their lengths, weights and levels are the buffers' business — the
arena only writes (optionally sorting in place) and views.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.kernels import KernelBackend

__all__ = ["BufferArena", "FLOAT_BYTES", "BUFFER_METADATA_BYTES"]

#: Bytes per stored element: IEEE-754 binary64, on every backend.
FLOAT_BYTES = 8

#: Accounting estimate for one Buffer view object (slot index, length,
#: weight, level, state, node id) — the O(b) metadata term of the memory
#: bound.  A slotted CPython object with eight fields is ~120 bytes; any
#: constant works for the invariant, this one is honest.
BUFFER_METADATA_BYTES = 120


class BufferArena:
    """A preallocated ``slots * capacity`` float64 store with slot views.

    :param slots: number of fixed-size slots (the engine passes ``b``).
    :param capacity: elements per slot (the engine passes ``k``).
    :param backend: kernel backend deciding the storage form; ``None``
        means the pure-python reference backend.
    :param buffer: shared-memory backing mode — a writable raw byte
        buffer (a :mod:`multiprocessing.shared_memory` segment slice,
        see :mod:`repro.runtime.shm`) of at least ``slots * capacity *
        8`` bytes that the arena wraps *instead of allocating*.  All
        slot writes, in-place sorts, and views then operate directly on
        that mapping, so another process holding the same segment sees
        every buffer without any bytes crossing a queue.  The arena
        never owns the buffer's lifecycle: create/close/unlink stay with
        the segment owner.

    The full store is allocated up front: the python backend's
    ``array('d')`` cannot grow while zero-copy memoryviews of it are
    exported, and a fixed footprint is the point of the data structure.
    """

    __slots__ = ("_slots", "_capacity", "_backend", "_storage", "_shared")

    def __init__(
        self,
        slots: int,
        capacity: int,
        backend: KernelBackend | None = None,
        *,
        buffer: Any | None = None,
    ) -> None:
        if slots < 1:
            raise ValueError(f"arena needs at least 1 slot, got {slots}")
        if capacity < 1:
            raise ValueError(f"slot capacity must be >= 1, got {capacity}")
        if backend is None:
            from repro.kernels.python_backend import PYTHON_BACKEND

            backend = PYTHON_BACKEND
        self._slots = slots
        self._capacity = capacity
        self._backend = backend
        self._shared = buffer is not None
        if buffer is None:
            self._storage = backend.alloc_values(slots * capacity)
        else:
            needed = slots * capacity * FLOAT_BYTES
            available = getattr(buffer, "nbytes", None)
            if available is None:
                available = len(buffer)
            if available < needed:
                raise ValueError(
                    f"shared buffer holds {available} bytes; arena of "
                    f"{slots}x{capacity} float64 needs {needed}"
                )
            self._storage = backend.wrap_values(buffer, slots * capacity)

    def __repr__(self) -> str:
        return (
            f"BufferArena(slots={self._slots}, capacity={self._capacity}, "
            f"backend={self._backend.name!r}, nbytes={self.nbytes})"
        )

    @property
    def slots(self) -> int:
        """Number of fixed-size slots."""
        return self._slots

    @property
    def capacity(self) -> int:
        """Elements per slot."""
        return self._capacity

    @property
    def backend(self) -> KernelBackend:
        """The kernel backend that owns the storage form."""
        return self._backend

    @property
    def shared(self) -> bool:
        """True when the storage wraps an externally owned shared buffer."""
        return self._shared

    @property
    def nbytes(self) -> int:
        """Bytes of element storage held: ``slots * capacity * 8``, always.

        Preallocation makes this a constant — the provable peak, not a
        high-water mark.
        """
        return self._slots * self._capacity * FLOAT_BYTES

    def write(self, slot: int, values: Sequence[float], *, sort: bool) -> None:
        """Copy ``values`` into a slot, sorting in place when asked.

        ``sort=True`` is New's populate path (unsorted sample values);
        ``sort=False`` is the Collapse output path (already sorted).
        """
        self._check_slot(slot)
        if len(values) > self._capacity:
            raise ValueError(
                f"{len(values)} values exceed slot capacity {self._capacity}"
            )
        if len(values) == 0:
            return
        self._backend.write_slot(
            self._storage, slot * self._capacity, values, sort=sort
        )

    def view(self, slot: int, length: int) -> Sequence[float]:
        """Zero-copy view of the first ``length`` elements of a slot.

        A ``memoryview`` on the python backend, an ndarray slice on the
        numpy one; both are random-access float sequences the merge and
        selection kernels consume without materialising lists.
        """
        self._check_slot(slot)
        if not 0 <= length <= self._capacity:
            raise ValueError(
                f"view length {length} outside slot capacity [0, {self._capacity}]"
            )
        return self._backend.slot_view(self._storage, slot * self._capacity, length)

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self._slots:
            raise IndexError(f"slot {slot} outside arena of {self._slots} slots")
