"""Parameter planning: choose b, k, h from (eps, delta) — Section 4.5.

The unknown-N algorithm is correct whenever its three constraints hold:

* **Eq 1 (sampling).**  ``min(L_d k, 8/3 L_s k) >= ln(2/delta) /
  (2 (1-alpha)^2 eps^2)`` — Hoeffding over the non-uniform sample.
* **Eq 2 (tree, after sampling onset).**  For every height ``H >= 1``
  reached after onset::

      f(H)/2 + 1 <= alpha * eps * k,
      f(H) = [L_d (h+H-1) + L_s ((h+1) 2^H - 2 (h+H))]
             / [L_d + L_s (2^H - 2)]

  This is the paper's derivation one step before its closed form
  ``h - c <= 2 alpha eps k`` (whose constant ``c`` is OCR-corrupted in our
  source); the supremum over H is evaluated numerically.  It reduces to the
  Munro-Paterson special case (``f -> h+1``) exactly as the paper states.
* **Eq 3 (tree, before sampling).**  ``h + 1 <= 2 eps k``.

``L_d`` (leaves before the first level-``h`` collapse output) and ``L_s``
(leaves per sampled level band) come from the collapse policy; for the
paper's policy ``L_d = C(b+h-1, h)`` and ``L_s = C(b+h-2, h)`` — validated
against direct tree simulation in the test suite.

:func:`plan_parameters` minimises total memory ``b * k`` by searching
``b, h`` over a small grid and, for each pair, splitting the error budget
optimally: the two active constraints have the shapes ``k >= c1/(1-alpha)^2``
and ``k >= c2/alpha``, whose upper envelope is minimised where they cross —
a quadratic in alpha solved in closed form.

:func:`plan_known_n` is the MRL98 comparator (N known in advance), used by
Table 1 and Figure 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.policy import CollapsePolicy, MRLPolicy

__all__ = [
    "Plan",
    "KnownNPlan",
    "plan_parameters",
    "plan_known_n",
    "known_n_memory",
    "tree_error_requirement",
]

_MAX_H_SUP = 64  # f(H) is monotone-bounded; its sup is reached well below this


def tree_error_requirement(l_d: int, l_s: int, h: int) -> float:
    """sup over H >= 1 of ``f(H)/2 + 1`` — the per-k tree error coefficient.

    ``alpha * eps * k`` must be at least this for the collapse tree to keep
    its share of the error budget at every point after sampling onset.
    """
    if l_d < 1 or l_s < 1:
        raise ValueError("leaf counts must be positive")
    if h < 1:
        raise ValueError(f"height must be >= 1, got {h}")
    worst = 0.0
    for big_h in range(1, _MAX_H_SUP + 1):
        pow_h = 2.0**big_h
        numerator = l_d * (h + big_h - 1) + l_s * ((h + 1) * pow_h - 2 * (h + big_h))
        denominator = l_d + l_s * (pow_h - 2)
        worst = max(worst, numerator / denominator)
    return worst / 2.0 + 1.0


def _optimal_alpha(c1: float, c2: float) -> float:
    """Minimise ``max(c1 / (1-alpha)^2, c2 / alpha)`` over alpha in (0, 1).

    The first branch increases and the second decreases in alpha, so the
    minimum sits where they cross: ``c1 * alpha = c2 * (1 - alpha)^2``,
    i.e. ``c2 a^2 - (2 c2 + c1) a + c2 = 0``; the root in (0, 1) is taken.
    """
    if c2 <= 0.0:
        raise ValueError("tree coefficient must be positive")
    disc = (2.0 * c2 + c1) ** 2 - 4.0 * c2 * c2
    alpha = (2.0 * c2 + c1 - math.sqrt(disc)) / (2.0 * c2)
    return min(1.0 - 1e-12, max(1e-12, alpha))


@dataclass(frozen=True, slots=True)
class Plan:
    """Parameters for the unknown-N algorithm.

    :ivar b: number of buffers.
    :ivar k: elements per buffer.
    :ivar h: tree height at which sampling begins (Section 3.7).
    :ivar alpha: fraction of eps budgeted to the deterministic tree.
    :ivar leaves_before_sampling: ``L_d`` for this (b, h) and policy.
    :ivar leaves_per_level: ``L_s`` for this (b, h) and policy.
    """

    eps: float
    delta: float
    b: int
    k: int
    h: int
    alpha: float
    leaves_before_sampling: int
    leaves_per_level: int
    policy_name: str

    @property
    def memory(self) -> int:
        """Total element slots: ``b * k``."""
        return self.b * self.k


@dataclass(frozen=True, slots=True)
class KnownNPlan:
    """Parameters for the known-N (MRL98) algorithm on a stream of length n.

    :ivar rate: upfront uniform sampling rate ``r`` (1 = no sampling).
    :ivar exact: True when the plan simply stores the whole input
        (optimal for tiny n).
    """

    eps: float
    delta: float
    n: int
    b: int
    k: int
    h: int
    alpha: float
    rate: int
    exact: bool

    @property
    def memory(self) -> int:
        """Total element slots: ``b * k``."""
        return self.b * self.k


def _validate_eps_delta(eps: float, delta: float) -> None:
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


def plan_parameters(
    eps: float,
    delta: float,
    *,
    num_quantiles: int = 1,
    policy: CollapsePolicy | None = None,
    max_b: int = 50,
    max_h: int = 50,
) -> Plan:
    """Memory-optimal (b, k, h, alpha) for the unknown-N algorithm.

    :param num_quantiles: number of quantiles computed simultaneously;
        Section 4.7's union bound replaces delta by delta/p in Eq 1.
    :param policy: collapse policy (leaf-count formulas differ); the
        default is the paper's :class:`~repro.core.policy.MRLPolicy`.
    :param max_b: largest buffer count searched ("searching for b and h in
        the interval [2, 50]").
    :param max_h: largest sampling-onset height searched.
    """
    _validate_eps_delta(eps, delta)
    if num_quantiles < 1:
        raise ValueError(f"num_quantiles must be >= 1, got {num_quantiles}")
    policy = policy if policy is not None else MRLPolicy()
    effective_delta = delta / num_quantiles
    log_term = math.log(2.0 / effective_delta)
    best: Plan | None = None
    for b in range(2, max_b + 1):
        for h in range(1, max_h + 1):
            try:
                l_d = policy.leaves_before_height(b, h)
                l_s = policy.leaves_per_sampled_level(b, h)
            except ValueError:
                continue  # e.g. Munro-Paterson cannot reach this height
            # Eq 1: k >= c1 / (1 - alpha)^2
            c1 = log_term / (2.0 * eps * eps * min(l_d, 8.0 * l_s / 3.0))
            # Eq 2: k >= c2 / alpha
            c2 = tree_error_requirement(l_d, l_s, h) / eps
            alpha = _optimal_alpha(c1, c2)
            k = max(
                math.ceil(c1 / (1.0 - alpha) ** 2),
                math.ceil(c2 / alpha),
                math.ceil((h + 1) / (2.0 * eps)),  # Eq 3
                1,
            )
            if best is None or b * k < best.memory:
                best = Plan(
                    eps=eps,
                    delta=delta,
                    b=b,
                    k=k,
                    h=h,
                    alpha=alpha,
                    leaves_before_sampling=l_d,
                    leaves_per_level=l_s,
                    policy_name=policy.name,
                )
            # Eq 3 alone forces k >= (h+1)/(2 eps), which grows with h; once
            # that floor exceeds the best memory the h sweep cannot win.
            if best is not None and b * math.ceil((h + 1) / (2.0 * eps)) > best.memory:
                break
    assert best is not None
    return best


def plan_known_n(
    eps: float,
    delta: float,
    n: int,
    *,
    policy: CollapsePolicy | None = None,
    max_b: int = 50,
    max_h: int = 50,
) -> KnownNPlan:
    """Memory-optimal plan for the MRL98 known-N algorithm.

    Three regimes compete and the cheapest wins:

    * **exact** — store all n elements (tiny n);
    * **deterministic** — no sampling; a tree of height h covers
      ``k * L_d(b, h)`` elements with error ``(h+1)/(2k) <= eps``;
    * **sampled** — uniform upfront sampling at rate r feeds
      ``s = ceil(n / r)`` elements to the tree; Hoeffding takes
      ``(1-alpha) eps``, the tree ``alpha eps``.
    """
    _validate_eps_delta(eps, delta)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    policy = policy if policy is not None else MRLPolicy()
    log_term = math.log(2.0 / delta)

    # Regime 1: exact storage.
    best = KnownNPlan(
        eps=eps,
        delta=delta,
        n=n,
        b=2,
        k=(n + 1) // 2,
        h=1,
        alpha=1.0,
        rate=1,
        exact=True,
    )

    for b in range(2, max_b + 1):
        for h in range(2, max_h + 1):
            try:
                l_d = policy.leaves_before_height(b, h)
            except ValueError:
                continue
            # Regime 2: deterministic, no sampling.
            k_det = max(math.ceil((h + 1) / (2.0 * eps)), math.ceil(n / l_d))
            if b * k_det < best.memory:
                best = KnownNPlan(
                    eps=eps,
                    delta=delta,
                    n=n,
                    b=b,
                    k=k_det,
                    h=h,
                    alpha=1.0,
                    rate=1,
                    exact=False,
                )
            # Regime 3: uniform sampling feeding the tree.
            c1 = log_term / (2.0 * eps * eps)  # sample size >= c1/(1-alpha)^2
            c2 = (h + 1) / (2.0 * eps)  # k >= c2 / alpha
            # Pick alpha balancing tree size k against sample size s: the
            # tree must also *hold* the sample, k * L_d >= s, giving
            # k >= c1 / ((1-alpha)^2 L_d).  Combine with k >= c2/alpha.
            alpha = _optimal_alpha(c1 / l_d, c2)
            sample_size = math.ceil(c1 / (1.0 - alpha) ** 2)
            if sample_size >= n:
                continue  # sampling cannot help; deterministic regime rules
            rate = math.ceil(n / sample_size)
            k_smp = max(
                math.ceil(c2 / alpha),
                math.ceil(math.ceil(n / rate) / l_d),
                1,
            )
            if b * k_smp < best.memory:
                best = KnownNPlan(
                    eps=eps,
                    delta=delta,
                    n=n,
                    b=b,
                    k=k_smp,
                    h=h,
                    alpha=alpha,
                    rate=rate,
                    exact=False,
                )
    return best


def known_n_memory(eps: float, delta: float, n: int) -> int:
    """Memory (element slots) of the best known-N plan — Figure 4's curve."""
    return plan_known_n(eps, delta, n).memory
