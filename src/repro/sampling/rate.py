"""Fixed-rate samplers: Bernoulli and systematic (one-per-block).

The Section 7 extreme-value estimator samples the stream at a fixed rate
``s / N`` chosen from the known stream length.  Two standard rate samplers
are provided:

* :class:`BernoulliSampler` — keep each element independently with
  probability ``p``; matches the with-replacement analysis of Stein's lemma
  most closely and is what the extreme-value estimator uses.
* :class:`SystematicSampler` — one uniform pick per consecutive block of
  ``round(1/p)`` elements; sample size is (almost) deterministic, which
  parallel buffer shrinking (Section 6) relies on.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Any

from repro.sampling.block import BlockSampler

__all__ = ["BernoulliSampler", "SystematicSampler"]


class BernoulliSampler:
    """Keep each offered element independently with probability ``p``."""

    __slots__ = ("_probability", "_rng", "_offered", "_kept")

    def __init__(
        self,
        probability: float,
        rng: Any = None,
        *,
        seed: int | None = None,
    ) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1], got {probability}")
        self._probability = probability
        self._rng: Any = rng if rng is not None else random.Random(seed)
        self._offered = 0
        self._kept = 0

    @property
    def probability(self) -> float:
        """Inclusion probability ``p``."""
        return self._probability

    @property
    def offered(self) -> int:
        """Elements offered so far."""
        return self._offered

    @property
    def kept(self) -> int:
        """Elements accepted so far."""
        return self._kept

    def offer(self, value: float) -> float | None:
        """Return ``value`` if it is sampled, else ``None``."""
        self._offered += 1
        if self._probability >= 1.0 or self._rng.random() < self._probability:
            self._kept += 1
            return value
        return None

    def offer_many(self, values: Sequence[float]) -> list[float]:
        """Offer a whole batch; return the kept elements in stream order.

        Same independent-inclusion law as :meth:`offer`.  With an RNG that
        supports vectorised draws (the numpy backend's), the whole batch
        costs one uniform draw; a plain :class:`random.Random` falls back
        to the per-element loop, bit-identical to repeated :meth:`offer`.
        """
        count = len(values)
        if self._probability >= 1.0:
            self._offered += count
            self._kept += count
            return [float(v) for v in values]
        if hasattr(self._rng, "random_array"):
            uniforms = self._rng.random_array(count)
            kept = [
                float(value)
                for value, u in zip(values, uniforms)
                if u < self._probability
            ]
        else:
            rnd = self._rng.random
            p = self._probability
            kept = [float(value) for value in values if rnd() < p]
        self._offered += count
        self._kept += len(kept)
        return kept

    def state_dict(self) -> dict[str, Any]:
        """The sampler's restorable state, including its RNG state."""
        from repro.kernels import rng_state_dict

        return {
            "probability": self._probability,
            "offered": self._offered,
            "kept": self._kept,
            "rng": rng_state_dict(self._rng),
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> "BernoulliSampler":
        """Rebuild a sampler exactly as :meth:`state_dict` captured it."""
        from repro.kernels import rng_from_state

        sampler = cls(float(state["probability"]), rng_from_state(state["rng"]))
        sampler._offered = int(state["offered"])
        sampler._kept = int(state["kept"])
        return sampler


class SystematicSampler:
    """One uniform representative per consecutive block of ``block`` elements.

    A thin, stateless-rate facade over :class:`BlockSampler` for callers
    that think in inclusion probabilities rather than block sizes.
    """

    __slots__ = ("_sampler", "_offered", "_kept")

    def __init__(
        self,
        block: int,
        rng: Any = None,
        *,
        seed: int | None = None,
    ) -> None:
        self._sampler = BlockSampler(
            block, rng if rng is not None else random.Random(seed)
        )
        self._offered = 0
        self._kept = 0

    @property
    def block(self) -> int:
        """Block size (inverse sampling rate)."""
        return self._sampler.rate

    @property
    def offered(self) -> int:
        """Elements offered so far."""
        return self._offered

    @property
    def kept(self) -> int:
        """Representatives emitted so far."""
        return self._kept

    def offer(self, value: float) -> float | None:
        """Return the block representative when a block completes, else None."""
        self._offered += 1
        chosen = self._sampler.offer(value)
        if chosen is not None:
            self._kept += 1
        return chosen

    def pending(self) -> tuple[float, int] | None:
        """Candidate of the incomplete trailing block, with its weight."""
        return self._sampler.pending()
