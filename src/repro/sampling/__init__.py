"""Sampling substrate.

Three samplers back the algorithms in this library:

* :class:`~repro.sampling.block.BlockSampler` — one uniformly random element
  per consecutive block of ``rate`` inputs.  This is the primitive inside
  the paper's **New** operation and the source of its non-uniform sampling
  scheme (the rate doubles as the collapse tree grows).
* :class:`~repro.sampling.reservoir.ReservoirSampler` — Vitter's reservoir
  sampling (Algorithms R and X), the classical uniform unknown-N sampler the
  paper uses as its baseline (Section 2.2).
* :class:`~repro.sampling.rate.BernoulliSampler` — include each element
  independently with a fixed probability; used by the Section 7
  extreme-value estimator when N is known.
"""

from repro.sampling.block import BlockSampler
from repro.sampling.rate import BernoulliSampler, SystematicSampler
from repro.sampling.reservoir import ReservoirSampler

__all__ = [
    "BlockSampler",
    "BernoulliSampler",
    "SystematicSampler",
    "ReservoirSampler",
]
