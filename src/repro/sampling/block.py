"""Block sampling: one uniformly random representative per block of inputs.

The paper's **New** operation (Section 3.1) "populates the buffer by
choosing a single random element from a block of ``r`` input elements each".
This module implements that primitive incrementally so the enclosing
estimator can consume a stream one element at a time and still answer
queries mid-block.

The within-block choice uses a size-1 reservoir: the ``j``-th element of the
current block replaces the candidate with probability ``1/j``, which yields
a uniform choice over the block without buffering it.  The sampling is
therefore *without replacement* across blocks, exactly as the paper notes
("Our sampling is without replacement"), and needs O(1) state.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.kernels import KernelBackend

__all__ = ["BlockSampler", "restore_rng"]


def restore_rng(state: Sequence[Any]) -> random.Random:
    """Rebuild a ``random.Random`` from a (possibly JSON-decoded) getstate().

    JSON round-trips turn the state's tuples into lists, so the exact
    ``(int, tuple[int, ...], float | None)`` shape ``setstate`` demands is
    re-imposed here.
    """
    version, internal, gauss_next = state
    # replint: disable=determinism -- the state set immediately below
    # replaces whatever this constructor seeded; no fresh draw survives
    rng = random.Random()
    rng.setstate(
        (
            int(version),
            tuple(int(word) for word in internal),
            None if gauss_next is None else float(gauss_next),
        )
    )
    return rng


class BlockSampler:
    """Incrementally pick one uniform element from each block of ``rate`` inputs.

    :param rate: block size ``r``; ``rate = 1`` means no sampling (every
        element is its own block's representative).
    :param rng: source of randomness (a :class:`random.Random`); supply a
        seeded instance for reproducible runs.

    Usage::

        sampler = BlockSampler(rate=4, rng=random.Random(7))
        for x in stream:
            chosen = sampler.offer(x)
            if chosen is not None:
                consume(chosen)        # weight = 4
        tail = sampler.pending()       # candidate of the incomplete block
    """

    __slots__ = ("_rate", "_rng", "_seen_in_block", "_candidate")

    def __init__(self, rate: int, rng: Any) -> None:
        if rate < 1:
            raise ValueError(f"rate must be >= 1, got {rate}")
        self._rate = rate
        self._rng = rng
        self._seen_in_block = 0
        self._candidate: float | None = None

    @property
    def rate(self) -> int:
        """Current block size ``r``."""
        return self._rate

    @property
    def seen_in_block(self) -> int:
        """Number of elements consumed by the current (incomplete) block."""
        return self._seen_in_block

    def offer(self, value: float) -> float | None:
        """Feed one element; return the block's representative when it completes.

        Returns ``None`` while the block is still filling.  The returned
        representative carries weight ``rate`` (the caller attaches it).
        """
        self._seen_in_block += 1
        if self._seen_in_block == 1:
            self._candidate = value
        elif self._rng.random() * self._seen_in_block < 1.0:
            self._candidate = value
        if self._seen_in_block == self._rate:
            chosen = self._candidate
            self._seen_in_block = 0
            self._candidate = None
            return chosen
        return None

    def pending(self) -> tuple[float, int] | None:
        """The incomplete block's ``(candidate, elements_seen)``, if any.

        The candidate is a uniform choice over the elements seen so far in
        the block, so weighting it by ``elements_seen`` keeps the total
        sample weight exactly equal to the number of stream elements
        consumed — the invariant the Output operation relies on.
        """
        if self._seen_in_block == 0:
            return None
        assert self._candidate is not None
        return self._candidate, self._seen_in_block

    def offer_many(self, values: Sequence[float]) -> list[float]:
        """Feed a batch; return all block representatives it completes.

        Semantically identical to calling :meth:`offer` per element (the
        same uniform-per-block distribution), but whole interior blocks
        are resolved with a single RNG draw each instead of ``rate``
        draws, which is what the estimators' bulk-ingest paths build on.
        Any trailing incomplete block stays pending, as with :meth:`offer`.
        """
        chosen = self.offer_window(values, 0, len(values))
        return chosen if isinstance(chosen, list) else list(chosen)

    def offer_window(
        self,
        values: Sequence[float],
        start: int,
        stop: int,
        backend: KernelBackend | None = None,
    ) -> Sequence[float]:
        """Feed ``values[start:stop]`` *in place* — no slice is materialised.

        The workhorse behind the estimators' ``update_batch``: the open
        block (if any) is finished element-by-element, whole interior
        blocks are resolved through the kernel backend's batch kernel
        (one vectorised draw per batch on the numpy backend, one scalar
        draw per block on the python one), and the tail opens a new
        partial block.  Returns the completed blocks' representatives.

        The return is *backend-native*: when the window starts on a block
        boundary and ends on one (the steady state of bulk ingest, where
        the enclosing estimator sizes windows to whole buffers), the
        backend kernel's output — an ndarray on the numpy backend, a
        compact slice for ``rate == 1`` — is passed through untouched, so
        representatives flow into the arena without a boxed-list detour.
        A plain list is returned only when the window straddles an open
        block.
        """
        if backend is None:
            from repro.kernels.python_backend import PYTHON_BACKEND as backend
        chosen: list[float] = []
        index = start
        # Finish the currently open block element-by-element (it already
        # has per-element reservoir state).
        while index < stop and self._seen_in_block != 0:
            result = self.offer(values[index])
            index += 1
            if result is not None:
                chosen.append(result)
        rate = self._rate
        if rate == 1:
            # Every element is its own block's representative.
            if index >= stop:
                return chosen
            if not chosen:
                # Whole window in one slice: an array-typed input stays
                # array-typed (a list input pays its one slice copy).
                return values[index:stop]
            chosen.extend(backend.tolist(values[index:stop]))
            return chosen
        n_blocks = (stop - index) // rate
        interior: Sequence[float] | None = None
        if n_blocks:
            interior = backend.block_representatives(
                values, index, n_blocks, rate, self._rng
            )
            index += n_blocks * rate
        # Tail: open a new partial block.
        tail: list[float] = []
        while index < stop:
            result = self.offer(values[index])
            index += 1
            if result is not None:  # cannot happen (tail < rate), but be safe
                tail.append(result)
        if interior is None:
            chosen.extend(tail)
            return chosen
        if not chosen and not tail:
            return interior
        chosen.extend(backend.tolist(interior))
        chosen.extend(tail)
        return chosen

    def state_dict(self) -> dict[str, Any]:
        """The sampler's restorable state (the RNG is owned by the caller)."""
        return {
            "rate": self._rate,
            "seen_in_block": self._seen_in_block,
            "candidate": self._candidate,
        }

    @classmethod
    def from_state_dict(
        cls, state: dict[str, Any], rng: Any
    ) -> "BlockSampler":
        """Rebuild a sampler mid-block; ``rng`` is the caller's restored RNG."""
        sampler = cls(rate=int(state["rate"]), rng=rng)
        sampler._seen_in_block = int(state["seen_in_block"])
        sampler._candidate = state["candidate"]
        return sampler

    def reset(self, rate: int) -> None:
        """Start afresh with a new block size, discarding any partial block.

        The enclosing estimator only changes the rate at buffer boundaries
        (when a New operation begins), at which point no partial block may
        be outstanding; this is asserted rather than silently dropped.
        """
        if rate < 1:
            raise ValueError(f"rate must be >= 1, got {rate}")
        if self._seen_in_block != 0:
            raise RuntimeError(
                "cannot change the sampling rate mid-block; "
                f"{self._seen_in_block} elements of the current block would be lost"
            )
        self._rate = rate
