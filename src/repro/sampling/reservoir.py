"""Reservoir sampling (Vitter 1985): uniform fixed-size samples, unknown N.

This is the paper's baseline for the unknown-N problem (Section 2.2): a
reservoir of size ``s = O(eps^-2 log delta^-1)`` yields eps-approximate
quantiles with probability ``1 - delta``, but the quadratic dependence on
``1/eps`` forces impractically large reservoirs — the gap the paper's
non-uniform scheme closes.

Two classical algorithms are provided:

* **Algorithm R** (`update`): per-element; the ``t``-th element replaces a
  random reservoir slot with probability ``n/t``.
* **Algorithm X** (`skip`): computes how many upcoming elements can be
  skipped outright by inverting the skip distribution
  ``Pr[S >= s] = prod_{i=1..s} (t + i - n) / (t + i)``, making bulk
  consumption of iterables cheap once ``t >> n``.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterable

from repro.stats.rank import quantile_position

__all__ = ["ReservoirSampler"]


class ReservoirSampler:
    """Maintain a uniform random sample of fixed size from a stream.

    Every subset of ``size`` elements of the stream seen so far is equally
    likely to be the reservoir — the textbook invariant, property-tested in
    the suite.

    :param size: reservoir capacity ``n``.
    :param rng: source of randomness; seed it for reproducibility.
    """

    __slots__ = ("_size", "_rng", "_sample", "_seen")

    def __init__(
        self,
        size: int,
        rng: random.Random | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"reservoir size must be >= 1, got {size}")
        self._size = size
        self._rng = rng if rng is not None else random.Random(seed)
        self._sample: list[float] = []
        self._seen = 0

    @property
    def size(self) -> int:
        """Reservoir capacity."""
        return self._size

    @property
    def seen(self) -> int:
        """Number of stream elements consumed so far."""
        return self._seen

    @property
    def sample(self) -> list[float]:
        """A copy of the current reservoir contents (unordered)."""
        return list(self._sample)

    def update(self, value: float) -> None:
        """Consume one element (Algorithm R)."""
        self._seen += 1
        if len(self._sample) < self._size:
            self._sample.append(value)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self._size:
            self._sample[slot] = value

    def skip(self) -> int:
        """Number of upcoming elements to skip before the next replacement.

        Algorithm X: draw ``V ~ U(0, 1)`` and return the smallest ``s``
        with ``Pr[S >= s + 1] <= V`` under
        ``Pr[S >= s] = prod_{i=1..s} (t + i - n) / (t + i)`` where ``t`` is
        the number seen and ``n`` the reservoir size.  Only valid once the
        reservoir is full.
        """
        if len(self._sample) < self._size:
            return 0
        t, n = self._seen, self._size
        v = self._rng.random()
        s = 0
        tail = 1.0  # Pr[S >= s + 1], shrinking as s grows
        while True:
            tail *= (t + s + 1 - n) / (t + s + 1)
            if tail <= v:
                return s
            s += 1

    def extend(self, values: Iterable[float]) -> None:
        """Consume many elements, using Algorithm X skips once warm.

        Equivalent in distribution to calling :meth:`update` per element,
        but touches the RNG only O(n log(t/n)) times in expectation.
        """
        iterator = iter(values)
        # Fill phase: plain Algorithm R until the reservoir is full.
        while len(self._sample) < self._size:
            try:
                value = next(iterator)
            except StopIteration:
                return
            self.update(value)
        while True:
            remaining = self.skip()
            consumed = 0
            value = None
            for value in itertools.islice(iterator, remaining + 1):
                consumed += 1
            self._seen += consumed
            if consumed <= remaining:  # stream ended inside the skip
                return
            # `value` survived the skip: it lands in a random slot.
            self._sample[self._rng.randrange(self._size)] = value

    def quantile(self, phi: float) -> float:
        """The phi-quantile of the reservoir (the baseline's estimate)."""
        if not self._sample:
            raise ValueError("reservoir is empty")
        ordered = sorted(self._sample)
        return ordered[quantile_position(phi, len(ordered)) - 1]

    @property
    def memory_elements(self) -> int:
        """Stored elements — the baseline's memory footprint."""
        return self._size
