"""The resilient quantile-service runtime (the serving tier).

A stdlib-only asyncio front end over the MRL99 estimators: multi-tenant
keyed sketches behind a line/JSON protocol (plus a minimal HTTP/1.1
shim), with the robustness machinery the rest of the repo's components
plug into — admission control with explicit load-shedding, per-request
deadlines that propagate into merge/query work, per-tenant circuit
breakers that degrade reads to the last good checkpoint instead of
failing them, graceful-shutdown checkpoint flushes, bit-identical boot
recovery over rotating checkpoint generations, and deterministic chaos
injection for testing all of the above.

Start one from the CLI (``repro serve --checkpoint-dir state/``) or in
process::

    from repro.service import QuantileService, ServiceConfig

    service = QuantileService(ServiceConfig(checkpoint_dir="state"))
    host, port = await service.start()
"""

from repro.service.admission import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    Overloaded,
    RateLimited,
    TokenBucket,
)
from repro.service.chaos import CHAOS_EXIT_CODE, ChaosCrash, ChaosPlan
from repro.service.metrics import MetricRegistry
from repro.service.protocol import (
    ERROR_CODES,
    OPS,
    ProtocolError,
    Request,
)
from repro.service.server import (
    IngestApplyError,
    QuantileService,
    ServiceConfig,
    ShuttingDown,
)
from repro.service.supervisor import (
    ServiceSupervisor,
    default_worker_count,
    rehome_checkpoints,
    serve_supervised,
)
from repro.service.tenants import (
    CircuitBreaker,
    CircuitOpenError,
    RecoveryReport,
    TenantRegistry,
    TenantState,
    shard_for_tenant,
)

__all__ = [
    "AdmissionController",
    "CHAOS_EXIT_CODE",
    "ChaosCrash",
    "ChaosPlan",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "ERROR_CODES",
    "IngestApplyError",
    "MetricRegistry",
    "OPS",
    "Overloaded",
    "ProtocolError",
    "QuantileService",
    "RateLimited",
    "RecoveryReport",
    "Request",
    "ServiceConfig",
    "ServiceSupervisor",
    "ShuttingDown",
    "TenantRegistry",
    "TenantState",
    "TokenBucket",
    "default_worker_count",
    "rehome_checkpoints",
    "serve_supervised",
    "shard_for_tenant",
]
