"""Process entry point for the quantile service (``repro serve``).

Owns everything process-shaped so :class:`~repro.service.server.QuantileService`
stays a pure event-loop object:

* builds the :class:`~repro.service.server.ServiceConfig` from CLI args;
* installs SIGTERM/SIGINT handlers that begin the *graceful* shutdown
  (drain queues, flush every tenant's rotating checkpoint, then exit 0)
  — SIGKILL is the crash the checkpoint chain exists to survive;
* prints a single ``READY <host> <port>`` line to stdout once recovery
  has finished and the socket is bound, so supervisors and tests can
  bind to port 0 and discover the real port without polling.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys
from collections.abc import Sequence

from repro.service.chaos import ChaosPlan
from repro.service.server import QuantileService, ServiceConfig
from repro.service.supervisor import (
    default_worker_count,
    rehome_checkpoints,
    serve_supervised,
)

__all__ = [
    "add_serve_parser",
    "build_config",
    "main",
    "resolve_workers",
    "run_from_args",
    "serve_forever",
]


def _add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 = OS-assigned (printed on READY)"
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="per-tenant checkpoint chains live here (omit: in-memory only)",
    )
    parser.add_argument("--eps", type=float, default=0.01)
    parser.add_argument("--delta", type=float, default=1e-4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend",
        choices=["python", "numpy", "native"],
        default=None,
        help=(
            "kernel backend (default: $REPRO_BACKEND if set, else native "
            "when the extension is available, else python)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "worker processes sharing the port via SO_REUSEPORT "
            "(0 = one per core; 1 = classic single process)"
        ),
    )
    parser.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        help="per-tenant token-bucket rate in requests/second (0 = off)",
    )
    parser.add_argument(
        "--rate-burst",
        type=int,
        default=0,
        help="token-bucket burst capacity (0 = derived from --rate-limit)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="pending ingest batches per tenant before shedding",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=256,
        help="concurrent requests before the front door sheds",
    )
    parser.add_argument(
        "--default-deadline",
        type=float,
        default=5.0,
        help="seconds granted to requests that carry no deadline_ms",
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=int,
        default=50_000,
        help="elements between automatic per-tenant checkpoint flushes",
    )
    parser.add_argument(
        "--keep-generations",
        type=int,
        default=2,
        help="checkpoint generations kept per tenant",
    )
    parser.add_argument(
        "--shutdown-drain",
        type=float,
        default=5.0,
        help="seconds granted to queued batches at graceful shutdown",
    )
    parser.add_argument(
        "--chaos",
        default=None,
        metavar="PLAN_JSON",
        help="deterministic fault-injection plan (tests/benchmarks only)",
    )


def build_config(args: argparse.Namespace) -> ServiceConfig:
    """The :class:`ServiceConfig` described by parsed ``serve`` args."""
    return ServiceConfig(
        host=args.host,
        port=args.port,
        checkpoint_dir=args.checkpoint_dir,
        eps=args.eps,
        delta=args.delta,
        seed=args.seed,
        backend=args.backend,
        queue_depth=args.queue_depth,
        max_inflight=args.max_inflight,
        default_deadline=args.default_deadline,
        checkpoint_interval=args.checkpoint_interval,
        keep_generations=args.keep_generations,
        shutdown_drain=args.shutdown_drain,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
    )


def resolve_workers(args: argparse.Namespace) -> int:
    """The worker count ``serve`` actually runs with.

    ``--workers 0`` (the default) means one worker per usable core.  A
    chaos plan forces a single process: chaos sequencing is a
    deterministic per-process script, and a kernel that load-balances
    connections across workers would scramble it.
    """
    workers = getattr(args, "workers", 0)
    if workers < 0:
        raise ValueError(f"--workers must be >= 0, got {workers}")
    if getattr(args, "chaos", None):
        if workers > 1:
            print(
                "# --chaos forces --workers 1 (deterministic sequencing)",
                file=sys.stderr,
                flush=True,
            )
        return 1
    return workers if workers > 0 else default_worker_count()


async def serve_forever(
    config: ServiceConfig, chaos: ChaosPlan | None = None
) -> int:
    """Run one service until a signal (or a chaos death) stops it."""
    service = QuantileService(config, chaos=chaos)
    host, port = await service.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, service.request_shutdown)
    print(f"READY {host} {port}", flush=True)
    if service.recovery is not None and service.recovery.restored:
        print(
            f"# recovered {len(service.recovery.restored)} tenant(s); "
            f"fallbacks={service.recovery.fallbacks or '{}'} "
            f"unrecoverable={service.recovery.unrecoverable or '[]'}",
            file=sys.stderr,
            flush=True,
        )
    await service.wait_stopped()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.service``)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Resilient multi-tenant quantile service (line/JSON protocol "
            "plus a minimal HTTP shim)"
        ),
    )
    _add_serve_arguments(parser)
    args = parser.parse_args(argv)
    return run_from_args(args)


def run_from_args(args: argparse.Namespace) -> int:
    """Shared driver for ``repro serve`` and ``python -m repro.service``."""
    chaos = ChaosPlan.from_file(args.chaos) if args.chaos else None
    config = build_config(args)
    workers = resolve_workers(args)
    try:
        if workers > 1:
            return asyncio.run(serve_supervised(config, workers))
        if config.checkpoint_dir is not None:
            # A directory last served by a multi-worker layout folds its
            # worker-*/ chains back under the root before the classic
            # single process recovers.
            rehome_checkpoints(
                config.checkpoint_dir, 1, config.keep_generations
            )
        return asyncio.run(serve_forever(config, chaos))
    except KeyboardInterrupt:
        return 0


def add_serve_parser(sub: "argparse._SubParsersAction[argparse.ArgumentParser]") -> None:
    """Register the ``serve`` subcommand on the top-level repro CLI."""
    serve = sub.add_parser(
        "serve",
        help="run the resilient multi-tenant quantile service",
        description=(
            "Serve ingest/query_many/inverse_quantile/snapshot (plus "
            "health, ready, /metrics) over multi-tenant sketches with "
            "admission control, deadlines, circuit breakers, and "
            "crash-safe rotating checkpoints."
        ),
    )
    _add_serve_arguments(serve)


if __name__ == "__main__":
    raise SystemExit(main())
