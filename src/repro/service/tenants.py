"""Multi-tenant keyed sketches with per-tenant planning and recovery.

Each tenant is one :class:`~repro.core.unknown_n.UnknownNQuantiles`
estimator with its own (ε, δ) plan, its own deterministically derived
seed (SHA-256 over the service master seed and the tenant name — the
same derivation discipline as :func:`repro.runtime.seed_for_worker`, so
a rebuilt service plans identical tenants), its own bounded ingest
queue, and its own circuit breaker.

Durability contract:

* a tenant checkpoint is written with
  :func:`repro.persist.save_checkpoint_rotating`, keeping the previous
  generation(s) on disk;
* boot recovery (:meth:`TenantRegistry.restore_all`) walks the
  checkpoint directory and restores every tenant from the newest
  generation whose CRC frame verifies — a torn latest frame falls back
  to the previous generation instead of losing the tenant;
* restore is **bit-identical**: the estimator's RNG state rides in the
  checkpoint, so a restored tenant answers exactly the quantiles the
  checkpointed one did, and continues the stream exactly as it would
  have.
"""

from __future__ import annotations

import hashlib
import os
import re
from dataclasses import dataclass, field
from typing import Any

from repro.core.params import Plan, plan_parameters
from repro.core.unknown_n import EstimatorSnapshot, UnknownNQuantiles
from repro.persist import (
    CheckpointError,
    load_checkpoint_rotating,
    save_checkpoint_rotating,
)

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "RecoveryReport",
    "TenantState",
    "TenantRegistry",
    "shard_for_tenant",
    "tenant_chain_name",
]

#: Tenant names must be filesystem- and label-safe.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_CKPT_PREFIX = "tenant-"
_CKPT_SUFFIX = ".ckpt"


def shard_for_tenant(name: str, workers: int) -> int:
    """The worker shard that owns ``name`` in a ``workers``-wide layout.

    SHA-256 over a fixed domain tag and the tenant name, first 8 bytes
    big-endian, modulo the worker count — the same derivation family as
    :func:`repro.runtime.seed_for_worker` and
    :meth:`TenantRegistry.tenant_seed`, and deliberately *seed-independent*
    so the mapping survives a master-seed change and every process
    (supervisor, workers, smart clients) computes it identically.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    payload = f"repro.service:shard:{name}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") % workers


def tenant_chain_name(entry: str) -> str | None:
    """The tenant a checkpoint-chain file belongs to, or ``None``.

    Accepts any generation of the rotating chain
    (``tenant-<name>.ckpt``, ``tenant-<name>.ckpt.1``, ...) and returns
    the validated tenant name; anything else — foreign files, invalid
    names — returns ``None`` so directory walks skip it.
    """
    if not entry.startswith(_CKPT_PREFIX):
        return None
    stem = entry[len(_CKPT_PREFIX):]
    if stem.endswith(_CKPT_SUFFIX):
        name = stem[: -len(_CKPT_SUFFIX)]
    else:
        marker = stem.rfind(_CKPT_SUFFIX + ".")
        if marker < 0:
            return None
        generation = stem[marker + len(_CKPT_SUFFIX) + 1 :]
        if not generation.isdigit():
            return None
        name = stem[:marker]
    if not _TENANT_RE.match(name):
        return None
    return name


class CircuitOpenError(Exception):
    """The tenant's ingest circuit is open; writes are rejected for now."""

    def __init__(self, tenant: str, failures: int) -> None:
        super().__init__(
            f"tenant {tenant!r} ingest circuit is open after {failures} "
            "consecutive apply failures; reads degrade to the last good "
            "checkpoint until a probe succeeds"
        )
        self.tenant = tenant
        self.failures = failures


class CircuitBreaker:
    """Consecutive-failure breaker with counted (not timed) probes.

    Deterministic on purpose: state advances on *events* (failures,
    successes, rejected attempts), never on wall-clock timers, so chaos
    tests can assert exact transitions.

    * **closed** — normal operation; ``failure_threshold`` consecutive
      apply failures trip it open.
    * **open** — ingest attempts are rejected with
      :class:`CircuitOpenError`; after ``probe_after`` rejections the
      breaker goes half-open.
    * **half-open** — exactly one probe batch is admitted; success
      closes the breaker, failure re-opens it.
    """

    __slots__ = ("failure_threshold", "probe_after", "_failures", "_state",
                 "_rejections", "trips")

    def __init__(self, failure_threshold: int = 3, probe_after: int = 4) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if probe_after < 1:
            raise ValueError(f"probe_after must be >= 1, got {probe_after}")
        self.failure_threshold = failure_threshold
        self.probe_after = probe_after
        self._failures = 0
        self._rejections = 0
        self._state = "closed"
        #: Lifetime count of closed -> open transitions (metrics).
        self.trips = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"``."""
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def allow_ingest(self) -> bool:
        """Whether an ingest attempt may proceed right now.

        In the open state this *counts* the rejected attempt; the
        ``probe_after``-th rejection flips to half-open so the next
        attempt goes through as the probe.
        """
        if self._state == "closed" or self._state == "half_open":
            return True
        self._rejections += 1
        if self._rejections >= self.probe_after:
            self._state = "half_open"
            self._rejections = 0
        return False

    def record_success(self) -> None:
        """A batch applied cleanly; a half-open probe success closes."""
        self._failures = 0
        if self._state == "half_open":
            self._state = "closed"

    def record_failure(self) -> None:
        """An apply failed; enough consecutive failures trip the breaker."""
        self._failures += 1
        if self._state == "half_open":
            self._state = "open"
            self._rejections = 0
            self.trips += 1
        elif self._state == "closed" and self._failures >= self.failure_threshold:
            self._state = "open"
            self._rejections = 0
            self.trips += 1


@dataclass
class TenantState:
    """Everything the server tracks for one tenant."""

    name: str
    estimator: UnknownNQuantiles
    breaker: CircuitBreaker
    #: Elements applied since the last checkpoint flush.
    since_checkpoint: int = 0
    #: Batches applied over the tenant's lifetime (chaos sequencing).
    batches_applied: int = 0
    #: Snapshot captured at the last successful checkpoint flush; what
    #: degraded reads serve while the breaker is open.
    last_good_snapshot: EstimatorSnapshot | None = None
    #: Stream count at the moment ``last_good_snapshot`` was taken.
    last_good_n: int = 0
    #: Generation the tenant was restored from at boot (None = fresh).
    restored_generation: int | None = None
    #: Memoised ``query_many`` answers keyed on the requested phi tuple.
    #: Valid only while :attr:`query_cache_version` still equals
    #: :meth:`mutation_version`; ingest clears the dict eagerly and the
    #: version check catches any mutation path that forgets to.
    query_cache: dict[tuple[float, ...], list[float]] = field(
        default_factory=dict
    )
    #: The ``(n, engine.version)`` pair the cached answers were computed
    #: at.  Starts impossible so an empty tenant never reports a hit.
    query_cache_version: tuple[int, int] = (-1, -1)

    @property
    def n(self) -> int:
        """Elements the live estimator has consumed."""
        return self.estimator.n

    def mutation_version(self) -> tuple[int, int]:
        """Key identifying the estimator's current answer set.

        ``n`` covers staged/in-flight elements (they shift extras even
        before a deposit) and the engine's mutation counter covers every
        deposit and Collapse, so two equal keys guarantee bit-identical
        query answers.
        """
        return (self.estimator.n, self.estimator.engine.version)


@dataclass
class RecoveryReport:
    """What boot recovery found in the checkpoint directory."""

    restored: list[str] = field(default_factory=list)
    #: Tenants restored from a generation > 0 (latest frame was damaged).
    fallbacks: dict[str, int] = field(default_factory=dict)
    #: Tenants whose every generation failed verification.
    unrecoverable: list[str] = field(default_factory=list)


class TenantRegistry:
    """Keyed tenant sketches with durable, generation-kept checkpoints.

    :param checkpoint_dir: directory for per-tenant checkpoint chains;
        ``None`` disables durability (a pure in-memory service).
    :param eps, delta: default accuracy contract for tenants that do not
        request their own.
    :param master_seed: root of the per-tenant seed derivation.
    :param keep_generations: checkpoint generations kept per tenant.
    :param breaker_threshold, breaker_probe_after: circuit breaker
        parameters applied to every tenant.
    """

    def __init__(
        self,
        checkpoint_dir: str | os.PathLike[str] | None,
        *,
        eps: float = 0.01,
        delta: float = 1e-4,
        master_seed: int = 0,
        backend: Any = None,
        keep_generations: int = 2,
        breaker_threshold: int = 3,
        breaker_probe_after: int = 4,
    ) -> None:
        if keep_generations < 1:
            raise ValueError(
                f"keep_generations must be >= 1, got {keep_generations}"
            )
        self._dir = os.fspath(checkpoint_dir) if checkpoint_dir is not None else None
        if self._dir is not None:
            os.makedirs(self._dir, exist_ok=True)
        self._eps = eps
        self._delta = delta
        self._master_seed = master_seed
        self._backend = backend
        self._keep = keep_generations
        self._breaker_threshold = breaker_threshold
        self._breaker_probe_after = breaker_probe_after
        self._tenants: dict[str, TenantState] = {}

    # ------------------------------------------------------------------
    # Lookup / creation
    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    def names(self) -> list[str]:
        """All known tenant names, sorted."""
        return sorted(self._tenants)

    def get(self, name: str) -> TenantState | None:
        """The tenant, or ``None`` when it does not exist."""
        return self._tenants.get(name)

    def tenant_seed(self, name: str) -> int:
        """Deterministic per-tenant seed (SHA-256 over master seed + name)."""
        payload = f"repro.service:{self._master_seed}:tenant:{name}".encode()
        return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")

    def validate_name(self, name: str) -> str:
        """A tenant name usable as a file stem and metric label, or raise."""
        if not _TENANT_RE.match(name):
            raise ValueError(
                f"invalid tenant name {name!r}: must match "
                f"{_TENANT_RE.pattern}"
            )
        return name

    def get_or_create(
        self,
        name: str,
        *,
        eps: float | None = None,
        delta: float | None = None,
    ) -> TenantState:
        """The tenant, created with its own (ε, δ) plan on first use.

        ``eps``/``delta`` apply only at creation; asking for a different
        contract on an existing tenant raises (an estimator's plan is
        fixed for its lifetime — recreate the tenant to re-plan).
        """
        self.validate_name(name)
        found = self._tenants.get(name)
        if found is not None:
            plan = found.estimator.plan
            if eps is not None and abs(plan.eps - eps) > 1e-12:
                raise ValueError(
                    f"tenant {name!r} already planned with eps={plan.eps:g}; "
                    f"cannot re-plan to eps={eps:g}"
                )
            if delta is not None and abs(plan.delta - delta) > 1e-18:
                raise ValueError(
                    f"tenant {name!r} already planned with delta={plan.delta:g}; "
                    f"cannot re-plan to delta={delta:g}"
                )
            return found
        plan = plan_parameters(
            eps if eps is not None else self._eps,
            delta if delta is not None else self._delta,
        )
        estimator = UnknownNQuantiles(
            plan=plan,
            seed=self.tenant_seed(name),
            backend=self._backend,
        )
        state = TenantState(
            name=name,
            estimator=estimator,
            breaker=CircuitBreaker(
                self._breaker_threshold, self._breaker_probe_after
            ),
        )
        self._tenants[name] = state
        return state

    def _adopt(
        self, name: str, estimator: UnknownNQuantiles, generation: int
    ) -> TenantState:
        state = TenantState(
            name=name,
            estimator=estimator,
            breaker=CircuitBreaker(
                self._breaker_threshold, self._breaker_probe_after
            ),
            restored_generation=generation,
        )
        state.last_good_snapshot = estimator.snapshot()
        state.last_good_n = estimator.n
        self._tenants[name] = state
        return state

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    @property
    def durable(self) -> bool:
        """Whether a checkpoint directory is configured."""
        return self._dir is not None

    def checkpoint_path(self, name: str) -> str:
        """The live (generation 0) checkpoint file of one tenant."""
        if self._dir is None:
            raise RuntimeError("registry has no checkpoint directory")
        return os.path.join(self._dir, f"{_CKPT_PREFIX}{name}{_CKPT_SUFFIX}")

    def flush(self, state: TenantState) -> str:
        """Checkpoint one tenant (rotating) and refresh its good snapshot."""
        path = self.checkpoint_path(state.name)
        save_checkpoint_rotating(state.estimator, path, keep=self._keep)
        state.since_checkpoint = 0
        state.last_good_snapshot = state.estimator.snapshot()
        state.last_good_n = state.estimator.n
        return path

    def flush_all(self) -> list[str]:
        """Checkpoint every tenant; the graceful-shutdown path."""
        if self._dir is None:
            return []
        return [self.flush(state) for _, state in sorted(self._tenants.items())]

    def restore_all(self) -> RecoveryReport:
        """Rebuild every tenant found in the checkpoint directory.

        The boot path: for each ``tenant-<name>.ckpt`` chain, restore
        the newest generation whose frame verifies.  A tenant whose
        latest frame is torn comes back from the previous generation
        (recorded in :attr:`RecoveryReport.fallbacks`); a tenant with no
        verifiable generation at all is reported unrecoverable and left
        out — the name becomes a *fresh* tenant on next use rather than
        serving silently wrong state.
        """
        report = RecoveryReport()
        if self._dir is None:
            return report
        for entry in sorted(os.listdir(self._dir)):
            if not entry.startswith(_CKPT_PREFIX) or not entry.endswith(
                _CKPT_SUFFIX
            ):
                continue
            name = entry[len(_CKPT_PREFIX) : -len(_CKPT_SUFFIX)]
            if not _TENANT_RE.match(name):
                continue
            try:
                restored, generation = load_checkpoint_rotating(
                    os.path.join(self._dir, entry), keep=self._keep
                )
            except (CheckpointError, FileNotFoundError):
                report.unrecoverable.append(name)
                continue
            if not isinstance(restored, UnknownNQuantiles):
                report.unrecoverable.append(name)
                continue
            self._adopt(name, restored, generation)
            report.restored.append(name)
            if generation > 0:
                report.fallbacks[name] = generation
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def describe(self, state: TenantState) -> dict[str, Any]:
        """Plain-data summary of one tenant (the ``snapshot`` op body)."""
        plan = state.estimator.plan
        return {
            "tenant": state.name,
            "n": state.estimator.n,
            "eps": plan.eps,
            "delta": plan.delta,
            "b": plan.b,
            "k": plan.k,
            "memory_bytes": state.estimator.memory_bytes,
            "breaker": state.breaker.state,
            "since_checkpoint": state.since_checkpoint,
            "restored_generation": state.restored_generation,
        }
