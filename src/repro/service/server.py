"""The resilient asyncio quantile service.

One :class:`QuantileService` hosts many tenants' sketches behind the
line/JSON protocol (plus the HTTP shim) of
:mod:`repro.service.protocol`.  The robustness machinery is the point;
each mechanism lives where it can be tested in isolation and is wired
together here:

* **admission control** (:mod:`repro.service.admission`): a global
  in-flight cap plus bounded per-tenant ingest queues; a request that
  does not fit is answered ``overloaded`` with a retry hint — the
  server sheds load explicitly, never silently;
* **deadlines**: every request carries a budget that is consulted
  before queue admission, while awaiting the apply, and between
  per-quantile units of query work, so work that cannot make its
  deadline stops early;
* **circuit breaker** (:class:`repro.service.tenants.CircuitBreaker`):
  consecutive ingest-apply failures flip a tenant to degraded-read mode
  — writes are rejected with ``circuit_open`` while reads are served
  from the last good checkpoint snapshot through
  ``merge_snapshots(strict=False)``, annotated with the coverage the
  answer actually rests on;
* **crash safety**: graceful shutdown (SIGTERM) drains the ingest
  queues (bounded) and flushes every tenant through the rotating
  checkpoint chain; boot recovery restores each tenant bit-identically
  from the newest generation whose CRC frame verifies, falling back a
  generation when the latest frame is torn;
* **chaos** (:mod:`repro.service.chaos`): a deterministic fault script
  can inject latency, connection resets, handler crashes, ingest-apply
  failures, and mid-request process death — the test suite's proof that
  every failure maps to an explicit response or a recoverable restart,
  never a wrong answer.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import contextlib
import json
import os
import time
from collections.abc import Awaitable, Callable
from dataclasses import dataclass, field
from typing import Any

from repro import persist
from repro.core.parallel import merge_snapshots
from repro.core.unknown_n import EstimatorSnapshot
from repro.kernels import BACKEND_ENV_VAR, available_backends
from repro.service.admission import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    Overloaded,
    RateLimited,
    TokenBucket,
)
from repro.service.chaos import ChaosCrash, ChaosPlan
from repro.service.metrics import (
    MetricRegistry,
    merge_metric_payloads,
    render_payload_text,
)
from repro.service.protocol import (
    HTTP_STATUS,
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    encode_http_response,
    encode_response,
    error_response,
    http_request_to_request,
    is_http_preamble,
    ok_response,
    parse_line,
)
from repro.service.tenants import (
    CircuitOpenError,
    RecoveryReport,
    TenantRegistry,
    TenantState,
    shard_for_tenant,
)

__all__ = [
    "IngestApplyError",
    "QuantileService",
    "ServiceConfig",
    "ShuttingDown",
    "resolve_backend",
]

#: Sentinel: abort the connection instead of writing a response.
_RESET = object()

#: Per-iteration timeout of a worker's queue poll; bounds how long a
#: cancelled/draining worker can sit blocked on an empty queue.
_WORKER_POLL_SECONDS = 0.5

#: Timeout on socket writes/drains; a peer that stops reading cannot
#: wedge a handler forever.
_WRITE_TIMEOUT_SECONDS = 30.0

#: Timeout on reading one HTTP header line / body.
_HTTP_READ_TIMEOUT_SECONDS = 30.0

#: Bound on a closing handshake.
_CLOSE_TIMEOUT_SECONDS = 5.0

#: StreamReader buffer limit: a full legal request line (the protocol's
#: MAX_LINE_BYTES) plus slack for HTTP header lines.  asyncio's default
#: is 64 KiB, far below what a max_batch ingest line legally needs.
_STREAM_LIMIT_BYTES = MAX_LINE_BYTES + 1024

#: Distinct phi tuples memoised per tenant between mutations; the cache
#: is cleared on every ingest, so this only bounds one quiet period.
_QUERY_CACHE_MAX_ENTRIES = 64

#: Ops that act on exactly one tenant's sketch and therefore must run on
#: the worker shard that owns the tenant.
_TENANT_OPS = frozenset({"ingest", "query_many", "inverse_quantile", "snapshot"})

#: Idle peer connections kept per shard in the forwarding pool; traffic
#: beyond the pool opens (and then discards) extra connections rather
#: than serialising behind one.
_PEER_POOL_MAX = 8

#: Ceiling on one peer RPC when the request's own deadline is longer.
_PEER_RPC_TIMEOUT_SECONDS = 10.0


def resolve_backend(configured: str | None) -> str | None:
    """The kernel backend the service plans tenants with.

    Explicit configuration wins; an exported ``REPRO_BACKEND`` keeps its
    degrade-with-warning semantics (pass ``None`` through so
    :func:`repro.kernels.get_backend` honours it); otherwise the service
    defaults to the native backend whenever the extension imports — the
    fastest bit-identical engine should not require opting in.
    """
    if configured is not None:
        return configured
    if os.environ.get(BACKEND_ENV_VAR):
        return None
    return "native" if "native" in available_backends() else None


class ShuttingDown(Exception):
    """The server is draining; new work is explicitly refused."""


class IngestApplyError(Exception):
    """A batch failed to apply (NaN rejection, injected fault, ...)."""


@dataclass
class ServiceConfig:
    """Tunable parameters of one :class:`QuantileService`."""

    host: str = "127.0.0.1"
    port: int = 0
    checkpoint_dir: str | None = None
    eps: float = 0.01
    delta: float = 1e-4
    seed: int = 0
    backend: str | None = None
    #: Pending batches allowed per tenant before ingest sheds.
    queue_depth: int = 64
    #: Values allowed in one ingest batch.
    max_batch: int = 65_536
    #: Concurrent requests allowed past the front door.
    max_inflight: int = 256
    #: Budget (seconds) for requests that carry no ``deadline_ms``.
    default_deadline: float = 5.0
    #: Per-connection idle read timeout (seconds).
    idle_timeout: float = 300.0
    #: Elements between automatic checkpoint flushes of one tenant.
    checkpoint_interval: int = 50_000
    #: Checkpoint generations kept per tenant (>= 1).
    keep_generations: int = 2
    #: Consecutive apply failures that trip a tenant's breaker.
    breaker_threshold: int = 3
    #: Rejected ingests before an open breaker admits a probe.
    breaker_probe_after: int = 4
    #: Bound (seconds) on draining ingest queues at graceful shutdown.
    shutdown_drain: float = 5.0
    #: This process's shard in a multi-worker layout (0-based).
    shard_index: int = 0
    #: Worker shards in the layout; 1 means the classic single process.
    shard_count: int = 1
    #: Loopback peer port of every shard, indexed by shard; set by the
    #: supervisor so workers can forward mis-routed tenant ops.
    shard_ports: tuple[int, ...] = field(default_factory=tuple)
    #: Bind listening sockets with ``SO_REUSEPORT`` (the supervisor holds
    #: a non-listening reservation socket on the same address).
    reuse_port: bool = False
    #: Per-tenant token-bucket rate (requests/second); 0 disables.
    rate_limit: float = 0.0
    #: Token-bucket burst capacity; 0 derives it from the rate.
    rate_burst: int = 0


class QuantileService:
    """A multi-tenant quantile sketch server on one asyncio event loop."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        chaos: ChaosPlan | None = None,
        metrics: MetricRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.chaos = chaos
        #: The kernel backend every tenant plans with (native by default
        #: when the extension is importable; see :func:`resolve_backend`).
        self.backend = resolve_backend(self.config.backend)
        self.shard_index = self.config.shard_index
        self.shard_count = max(1, self.config.shard_count)
        self.shard_ports = tuple(self.config.shard_ports)
        if self.shard_count > 1 and len(self.shard_ports) != self.shard_count:
            raise ValueError(
                f"shard_count={self.shard_count} needs one shard port per "
                f"worker, got {len(self.shard_ports)}"
            )
        self.registry = TenantRegistry(
            self.config.checkpoint_dir,
            eps=self.config.eps,
            delta=self.config.delta,
            master_seed=self.config.seed,
            backend=self.backend,
            keep_generations=self.config.keep_generations,
            breaker_threshold=self.config.breaker_threshold,
            breaker_probe_after=self.config.breaker_probe_after,
        )
        self.recovery: RecoveryReport | None = None
        self._admission = AdmissionController(self.config.max_inflight)
        self._queues: dict[str, asyncio.Queue[tuple[list[float], asyncio.Future[int]]]] = {}
        self._workers: dict[str, asyncio.Task[None]] = {}
        self._flush_locks: dict[str, asyncio.Lock] = {}
        self._pending_flushes: set[asyncio.Future[str]] = set()
        self._connections: set[asyncio.Task[None]] = set()
        self._server: asyncio.base_events.Server | None = None
        self._shard_server: asyncio.base_events.Server | None = None
        self._peer_pools: dict[
            int, list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]
        ] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._bound_host = self.config.host
        self._bound_port = 0
        self._request_seq = 0
        self._ready = False
        self._draining = False
        self._stopped = asyncio.Event()
        self._shutdown_started = False
        self._started_at = time.monotonic()
        self._handlers: dict[
            str, Callable[[Request, Deadline], Awaitable[dict[str, Any]]]
        ] = {
            "ingest": self._op_ingest,
            "query_many": self._op_query_many,
            "inverse_quantile": self._op_inverse_quantile,
            "snapshot": self._op_snapshot,
            "health": self._op_health,
            "ready": self._op_ready,
            "metrics": self._op_metrics,
            "route": self._op_route,
            "shards": self._op_shards,
            "query_fanout": self._op_query_fanout,
            "export_snapshots": self._op_export_snapshots,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Recover tenants, bind the socket, report the bound address.

        The service answers ``ready`` only after recovery has restored
        every tenant found on disk, so a load balancer that gates on
        readiness never routes to a half-recovered process.
        """
        recovery_started = time.perf_counter()
        self.recovery = self.registry.restore_all()
        recovery_ms = (time.perf_counter() - recovery_started) * 1000.0
        self.metrics.gauge("recovery_ms").set(recovery_ms)
        self.metrics.gauge("tenants_restored").set(len(self.recovery.restored))
        self.metrics.gauge("tenants_fallback_generation").set(
            len(self.recovery.fallbacks)
        )
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            limit=_STREAM_LIMIT_BYTES,
            reuse_port=self.config.reuse_port or None,
        )
        if self.shard_count > 1:
            # The loopback peer port: mis-routed tenant ops forwarded by
            # sibling shards arrive here.  The supervisor holds a bound,
            # non-listening SO_REUSEPORT reservation on the same port, so
            # a respawned worker re-binds the identical address.
            self._shard_server = await asyncio.start_server(
                self._on_peer_connection,
                "127.0.0.1",
                self.shard_ports[self.shard_index],
                limit=_STREAM_LIMIT_BYTES,
                reuse_port=True,
            )
        sockname = self._server.sockets[0].getsockname()
        self._bound_host, self._bound_port = str(sockname[0]), int(sockname[1])
        self._ready = True
        self._started_at = time.monotonic()
        return self._bound_host, self._bound_port

    def request_shutdown(self) -> None:
        """Signal-handler entry point: begin a graceful shutdown."""
        if not self._shutdown_started:
            asyncio.ensure_future(self.shutdown())

    async def shutdown(self, *, flush: bool = True) -> None:
        """Drain, flush checkpoints, close — the SIGTERM path.

        New requests are refused with ``shutting_down`` the moment this
        starts; queued ingest batches get ``shutdown_drain`` seconds to
        apply; then every tenant is checkpointed through the rotating
        chain so a subsequent boot recovers bit-identically.
        """
        if self._shutdown_started:
            await self._stopped.wait()
            return
        self._shutdown_started = True
        try:
            self._draining = True
            self._ready = False
            if self._server is not None:
                self._server.close()
            if self._shard_server is not None:
                self._shard_server.close()
            for pool in self._peer_pools.values():
                for _reader, writer in pool:
                    with contextlib.suppress(Exception):
                        writer.close()
            self._peer_pools.clear()
            drain_deadline = time.monotonic() + self.config.shutdown_drain
            while time.monotonic() < drain_deadline and any(
                not queue.empty() for queue in self._queues.values()
            ):
                await asyncio.sleep(0.01)
            for worker in self._workers.values():
                worker.cancel()
            if self._workers:
                await asyncio.gather(
                    *self._workers.values(), return_exceptions=True
                )
            self._workers.clear()
            if self._pending_flushes:
                # A cancelled worker may have left an executor flush
                # running; wait it out so the final sweep below never
                # races an in-flight checkpoint rotation.
                await asyncio.gather(
                    *list(self._pending_flushes), return_exceptions=True
                )
            if flush and self.registry.durable:
                self._flush_remaining_tenants()
            for connection in list(self._connections):
                connection.cancel()
            if self._connections:
                await asyncio.gather(
                    *self._connections, return_exceptions=True
                )
            self._connections.clear()
            if self._server is not None:
                with contextlib.suppress(TimeoutError, asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._server.wait_closed(),
                        timeout=_CLOSE_TIMEOUT_SECONDS,
                    )
            if self._shard_server is not None:
                with contextlib.suppress(TimeoutError, asyncio.TimeoutError):
                    await asyncio.wait_for(
                        self._shard_server.wait_closed(),
                        timeout=_CLOSE_TIMEOUT_SECONDS,
                    )
        finally:
            # Even a shutdown that failed part-way must conclude:
            # wait_stopped()/serve loops unblock and further SIGTERMs
            # are not absorbed into a hang that only SIGKILL ends.
            self._stopped.set()

    def _flush_remaining_tenants(self) -> None:
        """Final checkpoint sweep; one bad disk write must not abort it.

        Each tenant flushes independently — a failure is counted and the
        sweep moves on, so an I/O error on one tenant's chain cannot
        leave every *other* tenant unflushed at exit.
        """
        for name in self.registry.names():
            state = self.registry.get(name)
            if state is None:
                continue
            try:
                self.registry.flush(state)
            except Exception:
                self.metrics.counter(
                    "checkpoint_flush_failures_total", tenant=name
                ).increment()
            else:
                self.metrics.counter("checkpoint_flushes_total").increment()

    async def wait_stopped(self) -> None:
        """Block until a shutdown has fully completed."""
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    def _on_peer_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """A sibling shard's forwarding connection on the loopback port.

        Requests arriving here are already routed: a tenant op for a
        tenant this shard does not own is answered ``shard_unavailable``
        instead of being forwarded again, so a stale shard map can never
        bounce a request around the ring.
        """
        task = asyncio.ensure_future(
            self._handle_connection(reader, writer, from_peer=True)
        )
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        from_peer: bool = False,
    ) -> None:
        self.metrics.counter("connections_total").increment()
        try:
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=self.config.idle_timeout
                    )
                except (TimeoutError, asyncio.TimeoutError, ConnectionError):
                    return
                except ValueError:
                    # readline overran the stream limit: the frame is
                    # larger than any legal request and its framing is
                    # lost — answer explicitly, then close the
                    # connection (the never-silent contract).
                    self.metrics.counter(
                        "errors_total", code="bad_request"
                    ).increment()
                    writer.write(
                        encode_response(
                            error_response(
                                None,
                                "bad_request",
                                f"request line exceeds {MAX_LINE_BYTES} "
                                "bytes; split the ingest",
                            )
                        )
                    )
                    with contextlib.suppress(
                        TimeoutError, asyncio.TimeoutError, ConnectionError
                    ):
                        await asyncio.wait_for(
                            writer.drain(), timeout=_WRITE_TIMEOUT_SECONDS
                        )
                    return
                if not line:
                    return
                if is_http_preamble(line):
                    await self._handle_http(line, reader, writer)
                    return
                stripped = line.strip()
                if not stripped:
                    continue
                seq = self._next_seq()
                try:
                    request = parse_line(stripped)
                except ProtocolError as exc:
                    response: Any = error_response(None, exc.code, str(exc))
                    self.metrics.counter("errors_total", code=exc.code).increment()
                else:
                    response = await self._handle_request(
                        request, seq, from_peer=from_peer
                    )
                if response is _RESET:
                    self._abort(writer)
                    return
                writer.write(encode_response(response))
                try:
                    await asyncio.wait_for(
                        writer.drain(), timeout=_WRITE_TIMEOUT_SECONDS
                    )
                except (TimeoutError, asyncio.TimeoutError, ConnectionError):
                    return
        except asyncio.CancelledError:
            # Shutdown closes the connection under the client; the
            # client observes EOF, never a half-written frame.
            raise
        finally:
            await self._close_writer(writer)

    async def _handle_http(
        self,
        first_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        seq = self._next_seq()
        try:
            request = await self._read_http_request(first_line, reader)
        except ProtocolError as exc:
            self.metrics.counter("errors_total", code=exc.code).increment()
            payload = error_response(None, exc.code, str(exc))
            writer.write(
                encode_http_response(
                    HTTP_STATUS[exc.code], encode_response(payload)
                )
            )
            with contextlib.suppress(TimeoutError, asyncio.TimeoutError, ConnectionError):
                await asyncio.wait_for(
                    writer.drain(), timeout=_WRITE_TIMEOUT_SECONDS
                )
            return
        except (asyncio.IncompleteReadError, TimeoutError, asyncio.TimeoutError, ConnectionError):
            return
        response = await self._handle_request(request, seq)
        if response is _RESET:
            self._abort(writer)
            return
        assert isinstance(response, dict)
        if request.op == "metrics" and response.get("ok"):
            body = str(response.get("text", "")).encode("utf-8")
            payload_bytes, status, content_type = body, 200, "text/plain"
        else:
            status = 200
            if not response.get("ok"):
                status = HTTP_STATUS[response["error"]["code"]]
            elif request.op == "ready" and not response.get("ready"):
                status = 503
            payload_bytes, content_type = encode_response(response), "application/json"
        writer.write(encode_http_response(status, payload_bytes, content_type))
        with contextlib.suppress(TimeoutError, asyncio.TimeoutError, ConnectionError):
            await asyncio.wait_for(writer.drain(), timeout=_WRITE_TIMEOUT_SECONDS)

    async def _read_http_request(
        self, first_line: bytes, reader: asyncio.StreamReader
    ) -> Request:
        try:
            method, target, _version = first_line.decode("ascii").split(None, 2)
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(
                "bad_request", f"malformed HTTP request line: {first_line!r}"
            ) from exc
        content_length = 0
        while True:
            try:
                header = await asyncio.wait_for(
                    reader.readline(), timeout=_HTTP_READ_TIMEOUT_SECONDS
                )
            except ValueError as exc:
                # Stream-limit overrun on an absurdly long header line.
                raise ProtocolError(
                    "bad_request", "HTTP header line exceeds the stream limit"
                ) from exc
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise ProtocolError(
                        "bad_request", f"bad Content-Length {value.strip()!r}"
                    ) from exc
                if content_length < 0 or content_length > MAX_LINE_BYTES:
                    raise ProtocolError(
                        "bad_request",
                        f"Content-Length {content_length} outside "
                        f"[0, {MAX_LINE_BYTES}]",
                    )
        body = b""
        if content_length > 0:
            body = await asyncio.wait_for(
                reader.readexactly(content_length),
                timeout=_HTTP_READ_TIMEOUT_SECONDS,
            )
        return http_request_to_request(method, target, body)

    def _abort(self, writer: asyncio.StreamWriter) -> None:
        """Chaos reset: tear the connection down with no response bytes."""
        self.metrics.counter("chaos_resets_total").increment()
        transport = writer.transport
        transport.abort()

    async def _close_writer(self, writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(Exception):
            writer.close()
            await asyncio.wait_for(
                writer.wait_closed(), timeout=_CLOSE_TIMEOUT_SECONDS
            )

    def _next_seq(self) -> int:
        if self.chaos is not None:
            return self.chaos.next_request_seq()
        seq = self._request_seq
        self._request_seq += 1
        return seq

    # ------------------------------------------------------------------
    # Shard routing and per-tenant rate limits
    # ------------------------------------------------------------------

    def _owning_shard(self, request: Request) -> int | None:
        """The shard a tenant op belongs on, or ``None`` when unrouted."""
        if (
            self.shard_count <= 1
            or request.op not in _TENANT_OPS
            or not request.tenant
        ):
            return None
        return shard_for_tenant(request.tenant, self.shard_count)

    def _bucket_for(self, name: str) -> TokenBucket:
        bucket = self._buckets.get(name)
        if bucket is None:
            burst = (
                self.config.rate_burst
                if self.config.rate_burst > 0
                else max(1, int(self.config.rate_limit))
            )
            bucket = self._buckets[name] = TokenBucket(
                self.config.rate_limit, burst
            )
        return bucket

    def _check_rate_limit(self, request: Request) -> dict[str, Any] | None:
        """The ``rate_limited`` response for an over-limit tenant op.

        Enforced *before* admission control so a tenant over its
        contract never consumes an in-flight slot, and only on the shard
        that owns the tenant, so the bucket is a single global budget
        rather than one budget per ingress worker.  Returns ``None``
        when the request may proceed.
        """
        if (
            self.config.rate_limit <= 0.0
            or request.op not in _TENANT_OPS
            or not request.tenant
        ):
            return None
        try:
            name = self.registry.validate_name(request.tenant)
        except ValueError:
            return None  # the handler rejects it as bad_request
        owner = self._owning_shard(request)
        if owner is not None and owner != self.shard_index:
            return None  # the owner enforces its bucket
        try:
            self._bucket_for(name).admit(name)
        except RateLimited as exc:
            self.metrics.counter("rate_limited_total", tenant=name).increment()
            self.metrics.counter("errors_total", code="rate_limited").increment()
            return error_response(
                request.request_id,
                "rate_limited",
                str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
        return None

    async def _peer_rpc(
        self, shard: int, payload: dict[str, Any], deadline: Deadline
    ) -> dict[str, Any]:
        """One request/response exchange with a sibling shard.

        Connections are pooled per peer on a free list: concurrent
        forwards each pop an idle connection or open a fresh one, so
        proxy traffic never serialises behind a single socket.  Any
        failure maps to ``shard_unavailable`` — the caller's client sees
        an explicit, retryable error, never a hang.
        """
        remaining = deadline.remaining()
        timeout = (
            _PEER_RPC_TIMEOUT_SECONDS
            if remaining is None
            else min(_PEER_RPC_TIMEOUT_SECONDS, max(0.001, remaining))
        )
        pool = self._peer_pools.setdefault(shard, [])
        conn: tuple[asyncio.StreamReader, asyncio.StreamWriter] | None = None
        try:
            if pool:
                conn = pool.pop()
            else:
                conn = await asyncio.wait_for(
                    asyncio.open_connection(
                        "127.0.0.1",
                        self.shard_ports[shard],
                        limit=_STREAM_LIMIT_BYTES,
                    ),
                    timeout=timeout,
                )
            reader, writer = conn
            writer.write(
                json.dumps(payload, separators=(",", ":")).encode("utf-8")
                + b"\n"
            )
            await asyncio.wait_for(writer.drain(), timeout=timeout)
            line = await asyncio.wait_for(reader.readline(), timeout=timeout)
            if not line:
                raise ConnectionError(f"shard {shard} closed the connection")
            decoded = json.loads(line)
            if not isinstance(decoded, dict):
                raise ValueError(f"shard {shard} answered a non-object frame")
        except (
            TimeoutError,
            asyncio.TimeoutError,
            ConnectionError,
            OSError,
            ValueError,
        ) as exc:
            if conn is not None:
                with contextlib.suppress(Exception):
                    conn[1].close()
            self.metrics.counter(
                "forward_failures_total", shard=str(shard)
            ).increment()
            raise ProtocolError(
                "shard_unavailable",
                f"worker shard {shard} did not answer: "
                f"{type(exc).__name__}: {exc}",
            ) from exc
        if len(pool) < _PEER_POOL_MAX and not self._draining:
            pool.append(conn)
        else:
            with contextlib.suppress(Exception):
                conn[1].close()
        return decoded

    async def _forward_to_shard(
        self, owner: int, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        """Proxy one mis-routed tenant op to the shard that owns it.

        The kernel's ``SO_REUSEPORT`` balancing spreads *connections*
        over workers with no knowledge of tenants, so a request can land
        anywhere; the owning worker is one loopback hop away.  The
        remaining deadline travels with the forwarded frame, and the
        peer's response (its ``id`` echo included) is returned verbatim.
        """
        payload: dict[str, Any] = {
            "op": request.op,
            "tenant": request.tenant,
            **request.args,
        }
        if request.request_id is not None:
            payload["id"] = request.request_id
        remaining = deadline.remaining()
        if remaining is not None:
            payload["deadline_ms"] = max(1.0, remaining * 1000.0)
        response = await self._peer_rpc(owner, payload, deadline)
        self.metrics.counter("forwarded_total", shard=str(owner)).increment()
        return response

    # ------------------------------------------------------------------
    # Dispatch: every failure becomes an explicit, coded response
    # ------------------------------------------------------------------

    async def _handle_request(
        self, request: Request, seq: int, *, from_peer: bool = False
    ) -> Any:
        deadline = Deadline.from_ms(
            request.deadline_ms, self.config.default_deadline
        )
        self.metrics.counter("requests_total", op=request.op).increment()
        started = time.perf_counter()
        code: str | None = None
        limited = self._check_rate_limit(request)
        if limited is not None:
            return limited
        try:
            self._admission.admit()
        except Overloaded as exc:
            self.metrics.counter("shed_total", kind="inflight").increment()
            self.metrics.counter("errors_total", code="overloaded").increment()
            return error_response(
                request.request_id,
                "overloaded",
                str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
        try:
            if self.chaos is not None:
                delay = self.chaos.take_latency(seq)
                if delay > 0.0:
                    self.metrics.counter("chaos_latency_total").increment()
                    await asyncio.sleep(delay)
                self.chaos.maybe_die(seq)
                self.chaos.maybe_crash(seq, f"op {request.op!r}")
            if self._draining and request.op not in ("health", "ready", "metrics"):
                raise ShuttingDown("server is draining for shutdown")
            owner = self._owning_shard(request)
            if owner is not None and owner != self.shard_index:
                if from_peer:
                    # Never re-forward: a forwarded request landing on
                    # the wrong shard means the maps disagree, and
                    # bouncing it onward could loop forever.
                    raise ProtocolError(
                        "shard_unavailable",
                        f"tenant {request.tenant!r} belongs to shard "
                        f"{owner}, not shard {self.shard_index}",
                    )
                response = await self._forward_to_shard(owner, request, deadline)
            else:
                handler = self._handlers[request.op]
                body = await handler(request, deadline)
                response = ok_response(request.request_id, **body)
        except ProtocolError as exc:
            code = exc.code
            response = error_response(request.request_id, exc.code, str(exc))
        except Overloaded as exc:
            code = "overloaded"
            self.metrics.counter("shed_total", kind="queue").increment()
            response = error_response(
                request.request_id,
                "overloaded",
                str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
        except DeadlineExceeded as exc:
            code = "deadline_exceeded"
            response = error_response(
                request.request_id, "deadline_exceeded", str(exc)
            )
        except CircuitOpenError as exc:
            code = "circuit_open"
            response = error_response(
                request.request_id,
                "circuit_open",
                str(exc),
                degraded_reads=True,
            )
        except IngestApplyError as exc:
            code = "ingest_failed"
            response = error_response(
                request.request_id, "ingest_failed", str(exc)
            )
        except ShuttingDown as exc:
            code = "shutting_down"
            response = error_response(
                request.request_id, "shutting_down", str(exc)
            )
        except ChaosCrash as exc:
            # The injected mid-request crash: mapped, never swallowed.
            code = "internal"
            self.metrics.counter("chaos_crashes_total").increment()
            response = error_response(
                request.request_id, "internal", str(exc), injected=True
            )
        except ValueError as exc:
            code = "bad_request"
            response = error_response(request.request_id, "bad_request", str(exc))
        except Exception as exc:
            # Any other handler exception still maps to a coded response;
            # the connection (and the server) outlive the failure.
            code = "internal"
            self.metrics.counter("unexpected_errors_total").increment()
            response = error_response(
                request.request_id,
                "internal",
                f"{type(exc).__name__}: {exc}",
            )
        finally:
            self._admission.release()
            self.metrics.histogram("request_seconds", op=request.op).record(
                time.perf_counter() - started
            )
        if code is not None:
            self.metrics.counter("errors_total", code=code).increment()
        if self.chaos is not None and self.chaos.takes_reset(seq):
            return _RESET
        return response

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------

    def _require_tenant_name(self, request: Request) -> str:
        if not request.tenant:
            raise ProtocolError(
                "bad_request", f"op {request.op!r} requires a tenant"
            )
        return self.registry.validate_name(request.tenant)

    def _require_existing_tenant(self, request: Request) -> TenantState:
        name = self._require_tenant_name(request)
        state = self.registry.get(name)
        if state is None:
            raise ProtocolError(
                "unknown_tenant", f"tenant {name!r} has no data on this server"
            )
        return state

    def _ensure_worker(self, state: TenantState) -> asyncio.Queue[
        tuple[list[float], asyncio.Future[int]]
    ]:
        queue = self._queues.get(state.name)
        if queue is None:
            queue = asyncio.Queue(maxsize=self.config.queue_depth)
            self._queues[state.name] = queue
        worker = self._workers.get(state.name)
        if worker is None or worker.done():
            self._workers[state.name] = asyncio.ensure_future(
                self._ingest_worker(state, queue)
            )
        return queue

    async def _ingest_worker(
        self,
        state: TenantState,
        queue: asyncio.Queue[tuple[list[float], asyncio.Future[int]]],
    ) -> None:
        """Drain one tenant's bounded queue; batches apply in order."""
        while True:
            try:
                values, future = await asyncio.wait_for(
                    queue.get(), timeout=_WORKER_POLL_SECONDS
                )
            except (TimeoutError, asyncio.TimeoutError):
                continue
            await self._apply_batch(state, values, future)
            queue.task_done()

    async def _apply_batch(
        self,
        state: TenantState,
        values: list[float],
        future: asyncio.Future[int],
    ) -> None:
        seq = (
            self.chaos.next_apply_seq()
            if self.chaos is not None
            else state.batches_applied
        )
        try:
            if self.chaos is not None:
                self.chaos.maybe_apply_crash(seq, state.name)
            state.estimator.update_batch(values)
        except Exception as exc:
            # NaN rejection is atomic (the batch did not partially apply)
            # and injected crashes never touched the estimator, so the
            # sketch is still exactly its pre-batch state: fail the
            # request explicitly and let the breaker account it.
            state.breaker.record_failure()
            self.metrics.counter(
                "ingest_failures_total", tenant=state.name
            ).increment()
            if state.breaker.state == "open":
                self.metrics.gauge(
                    "breaker_open", tenant=state.name
                ).set(1.0)
            if not future.done():
                future.set_exception(
                    IngestApplyError(f"{type(exc).__name__}: {exc}")
                )
            return
        state.breaker.record_success()
        self.metrics.gauge("breaker_open", tenant=state.name).set(0.0)
        state.batches_applied += 1
        state.since_checkpoint += len(values)
        # Eagerly drop memoised answers (the version check would catch a
        # stale read anyway; this frees the memory at mutation time).
        state.query_cache.clear()
        self.metrics.counter("ingested_values_total").increment(len(values))
        if not future.done():
            future.set_result(len(values))
        if (
            self.registry.durable
            and state.since_checkpoint >= self.config.checkpoint_interval
        ):
            try:
                await self._flush_tenant(state)
            except asyncio.CancelledError:
                raise
            except Exception:
                # The batch itself applied; a failed interval flush
                # costs checkpoint freshness, not correctness.  The
                # element counter stays high, so the next batch retries.
                self.metrics.counter(
                    "checkpoint_flush_failures_total", tenant=state.name
                ).increment()

    async def _flush_tenant(self, state: TenantState) -> str:
        """Checkpoint one tenant without stalling the event loop.

        ``registry.flush`` serialises, writes, and fsyncs; running it in
        the default executor keeps a slow disk from freezing every other
        tenant's handlers for the duration.  The per-tenant lock
        serialises concurrent flushes (an interval flush racing an
        explicit ``snapshot persist``) so the rotation chain is never
        written twice at once, and the shielded, tracked future lets
        shutdown wait out an in-flight write before its final sweep.
        """
        lock = self._flush_locks.setdefault(state.name, asyncio.Lock())
        async with lock:
            flush_future = asyncio.get_running_loop().run_in_executor(
                None, self.registry.flush, state
            )
            self._pending_flushes.add(flush_future)
            flush_future.add_done_callback(self._pending_flushes.discard)
            path = await asyncio.shield(flush_future)
        self.metrics.counter("checkpoint_flushes_total").increment()
        return path

    async def _op_ingest(
        self, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        name = self._require_tenant_name(request)
        raw = request.args.get("values")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(
                "bad_request", "ingest needs a non-empty 'values' array"
            )
        if len(raw) > self.config.max_batch:
            raise ProtocolError(
                "bad_request",
                f"batch of {len(raw)} exceeds max_batch="
                f"{self.config.max_batch}; split the ingest",
            )
        try:
            values = [float(value) for value in raw]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                "bad_request", f"values must all be numbers: {exc}"
            ) from exc
        eps = request.args.get("eps")
        delta = request.args.get("delta")
        state = self.registry.get_or_create(
            name,
            eps=float(eps) if eps is not None else None,
            delta=float(delta) if delta is not None else None,
        )
        if not state.breaker.allow_ingest():
            raise CircuitOpenError(name, state.breaker.consecutive_failures)
        queue = self._ensure_worker(state)
        future: asyncio.Future[int] = asyncio.get_running_loop().create_future()
        self._admission.enqueue(
            queue, (values, future), tenant=name, deadline=deadline
        )
        try:
            applied = await asyncio.wait_for(future, timeout=deadline.remaining())
        except (TimeoutError, asyncio.TimeoutError):
            raise DeadlineExceeded(
                f"deadline expired waiting for tenant {name!r} apply; the "
                "batch may still be applied (at-least-once ingest)"
            ) from None
        return {
            "tenant": name,
            "accepted": applied,
            "n": state.n,
            "pending_batches": queue.qsize(),
            "breaker": state.breaker.state,
        }

    # ------------------------------------------------------------------
    # Read path (with degraded mode)
    # ------------------------------------------------------------------

    @staticmethod
    def _parse_phis(request: Request) -> list[float]:
        raw = request.args.get("phis")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError(
                "bad_request", "query_many needs a non-empty 'phis' array"
            )
        try:
            return [float(phi) for phi in raw]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                "bad_request", f"phis must all be numbers: {exc}"
            ) from exc

    async def _op_query_many(
        self, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        state = self._require_existing_tenant(request)
        phis = self._parse_phis(request)
        deadline.check("starting query")
        if state.breaker.state == "open":
            return self._degraded_query(state, phis, deadline)
        if state.n == 0:
            raise ProtocolError(
                "no_data", f"tenant {state.name!r} holds no elements yet"
            )
        return {
            "tenant": state.name,
            "quantiles": self._cached_query_many(state, phis, deadline),
            "n": state.n,
            "degraded": False,
        }

    def _cached_query_many(
        self, state: TenantState, phis: list[float], deadline: Deadline
    ) -> list[float]:
        """Answer a phi list, memoised per tenant between mutations.

        The engine already memoises its merged view per mutation (so a
        burst of queries pays one merge); this layer sits above it and
        skips even the binary searches when an identical phi tuple
        repeats — the common shape for dashboards polling a fixed
        quantile set.  Keyed on :meth:`TenantState.mutation_version`, so
        any ingest (staged or deposited) invalidates; the degraded read
        path never touches it.
        """
        version = state.mutation_version()
        if state.query_cache_version != version:
            state.query_cache.clear()
            state.query_cache_version = version
        key = tuple(phis)
        cached = state.query_cache.get(key)
        if cached is not None:
            self.metrics.counter(
                "query_cache_hits_total", tenant=state.name
            ).increment()
            return list(cached)
        self.metrics.counter(
            "query_cache_misses_total", tenant=state.name
        ).increment()
        # One batched walk over the merged view (a single native call on
        # the C backend) instead of one rank search per phi; the budget
        # is checked once up front since the batch is not interruptible.
        deadline.check(f"querying {len(phis)} phis")
        quantiles = state.estimator.query_many(phis)
        if len(state.query_cache) >= _QUERY_CACHE_MAX_ENTRIES:
            # FIFO bound: drop the oldest phi tuple (dict preserves
            # insertion order) so a scan of unique requests cannot grow
            # the cache without limit inside one quiet period.
            state.query_cache.pop(next(iter(state.query_cache)))
        state.query_cache[key] = list(quantiles)
        return quantiles

    def _degraded_query(
        self, state: TenantState, phis: list[float], deadline: Deadline
    ) -> dict[str, Any]:
        """Serve coverage-annotated answers from the last good snapshot."""
        snapshot = state.last_good_snapshot
        if snapshot is None or snapshot.n == 0:
            raise ProtocolError(
                "degraded_unavailable",
                f"tenant {state.name!r} is degraded and has no good "
                "checkpoint snapshot to serve from",
            )
        merged = merge_snapshots(
            [snapshot],
            strict=False,
            expected_n=max(state.n, snapshot.n),
            seed=self.registry.tenant_seed(f"{state.name}#degraded"),
            backend=self.backend,
        )
        quantiles: list[float] = []
        for phi in phis:
            deadline.check(f"degraded-querying phi={phi:g}")
            quantiles.append(merged.query(phi))
        report = merged.report
        assert report is not None
        self.metrics.counter(
            "degraded_reads_total", tenant=state.name
        ).increment()
        return {
            "tenant": state.name,
            "quantiles": quantiles,
            "n": state.n,
            "degraded": True,
            "coverage": report.weight_coverage,
            "as_of_n": snapshot.n,
        }

    async def _op_inverse_quantile(
        self, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        state = self._require_existing_tenant(request)
        raw = request.args.get("value")
        if raw is None or isinstance(raw, bool) or not isinstance(raw, (int, float)):
            raise ProtocolError(
                "bad_request", "inverse_quantile needs a numeric 'value'"
            )
        deadline.check("starting inverse query")
        if state.breaker.state == "open":
            raise ProtocolError(
                "degraded_unavailable",
                f"tenant {state.name!r} is degraded; inverse queries need "
                "the live summary (retry after the breaker closes)",
            )
        if state.n == 0:
            raise ProtocolError(
                "no_data", f"tenant {state.name!r} holds no elements yet"
            )
        value = float(raw)
        rank = state.estimator.rank(value)
        return {
            "tenant": state.name,
            "value": value,
            "rank": rank,
            "phi": rank / state.n,
            "n": state.n,
        }

    # ------------------------------------------------------------------
    # Introspection ops
    # ------------------------------------------------------------------

    async def _op_snapshot(
        self, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        state = self._require_existing_tenant(request)
        deadline.check("building snapshot description")
        extra: dict[str, Any] = {}
        if request.args.get("persist"):
            if not self.registry.durable:
                raise ProtocolError(
                    "bad_request",
                    "persist requested but the service has no "
                    "checkpoint directory",
                )
            extra["checkpoint"] = await self._flush_tenant(state)
            extra["generations_kept"] = self.config.keep_generations
        body = self.registry.describe(state)
        body.update(extra)
        return body

    async def _op_health(
        self, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        breakers_open = sum(
            1
            for name in self.registry.names()
            if (state := self.registry.get(name)) is not None
            and state.breaker.state == "open"
        )
        return {
            "status": "draining" if self._draining else "serving",
            "uptime_s": time.monotonic() - self._started_at,
            "tenants": len(self.registry),
            "inflight": self._admission.inflight,
            "breakers_open": breakers_open,
            "shed_total": self._admission.shed_total,
            "shard": self.shard_index,
            "workers": self.shard_count,
            "backend": self.backend,
        }

    async def _op_ready(
        self, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        recovery: dict[str, Any] = {}
        if self.recovery is not None:
            recovery = {
                "restored": len(self.recovery.restored),
                "fallbacks": dict(self.recovery.fallbacks),
                "unrecoverable": list(self.recovery.unrecoverable),
            }
        return {"ready": self._ready and not self._draining, "recovery": recovery}

    async def _op_metrics(
        self, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        if self.shard_count <= 1 or request.args.get("local"):
            return {
                "text": self.metrics.render_text(),
                "metrics": self.metrics.to_dict(),
                "shard": self.shard_index,
            }
        # Aggregated scrape: collect every sibling's registry payload and
        # merge (counters/gauges sum; histograms stay per-worker).  A
        # peer that cannot answer is reported, not silently omitted.
        payloads = {self.shard_index: self.metrics.to_dict()}
        missing: list[int] = []
        for shard in range(self.shard_count):
            if shard == self.shard_index:
                continue
            deadline.check(f"scraping worker shard {shard}")
            try:
                answer = await self._peer_rpc(
                    shard, {"op": "metrics", "local": True}, deadline
                )
            except ProtocolError:
                missing.append(shard)
                continue
            if answer.get("ok") and isinstance(answer.get("metrics"), dict):
                payloads[shard] = answer["metrics"]
            else:
                missing.append(shard)
        merged = merge_metric_payloads(payloads)
        body: dict[str, Any] = {
            "text": render_payload_text(merged),
            "metrics": merged,
        }
        if missing:
            body["shards_missing"] = missing
        return body

    # ------------------------------------------------------------------
    # Shard-aware ops
    # ------------------------------------------------------------------

    async def _op_route(
        self, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        """Where a tenant lives: smart clients connect straight to the
        owning shard's loopback port and skip the forwarding hop."""
        name = self._require_tenant_name(request)
        if self.shard_count <= 1:
            return {
                "tenant": name,
                "shard": 0,
                "workers": 1,
                "host": self._bound_host,
                "port": self._bound_port,
            }
        owner = shard_for_tenant(name, self.shard_count)
        return {
            "tenant": name,
            "shard": owner,
            "workers": self.shard_count,
            "host": "127.0.0.1",
            "port": self.shard_ports[owner],
        }

    def _local_shard_info(self) -> dict[str, Any]:
        names = self.registry.names()
        total_n = 0
        for name in names:
            state = self.registry.get(name)
            if state is not None:
                total_n += state.n
        return {
            "shard": self.shard_index,
            "pid": os.getpid(),
            "port": (
                self.shard_ports[self.shard_index]
                if self.shard_count > 1
                else self._bound_port
            ),
            "tenants": len(names),
            "n_total": total_n,
        }

    async def _op_shards(
        self, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        if self.shard_count <= 1 or request.args.get("local"):
            return {"workers": self.shard_count, "shards": [self._local_shard_info()]}
        shards: list[dict[str, Any]] = [self._local_shard_info()]
        for shard in range(self.shard_count):
            if shard == self.shard_index:
                continue
            deadline.check(f"asking worker shard {shard} for its state")
            try:
                answer = await self._peer_rpc(
                    shard, {"op": "shards", "local": True}, deadline
                )
            except ProtocolError as exc:
                shards.append({"shard": shard, "error": str(exc)})
                continue
            if answer.get("ok") and isinstance(answer.get("shards"), list):
                shards.extend(answer["shards"])
            else:
                shards.append({"shard": shard, "error": "bad peer answer"})
        shards.sort(key=lambda info: int(info.get("shard", -1)))
        return {"workers": self.shard_count, "shards": shards}

    async def _op_export_snapshots(
        self, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        """Ship locally-owned tenants' snapshots as checkpoint frames.

        Inherently local — it never forwards — so the fan-out read path
        (:meth:`_op_query_fanout`) cannot loop or deadlock through it.
        A named tenant this shard does not hold exports as ``None``.
        """
        raw = request.args.get("tenants")
        if not isinstance(raw, list) or not all(
            isinstance(name, str) for name in raw
        ):
            raise ProtocolError(
                "bad_request", "export_snapshots needs a 'tenants' name array"
            )
        snapshots: dict[str, str | None] = {}
        for name in raw:
            deadline.check(f"exporting tenant {name!r}")
            state = self.registry.get(name)
            if state is None or state.n == 0:
                snapshots[name] = None
                continue
            frame = persist.dumps(state.estimator.snapshot())
            snapshots[name] = base64.b64encode(frame).decode("ascii")
        return {"shard": self.shard_index, "snapshots": snapshots}

    async def _op_query_fanout(
        self, request: Request, deadline: Deadline
    ) -> dict[str, Any]:
        """Quantiles over the union of several tenants' streams.

        The Section 6 lossless-merge read across shards: each owning
        worker exports checkpoint-framed snapshots, this worker merges
        them (``strict=False``) and answers with the coverage the merge
        actually rests on — a missing shard degrades the answer
        explicitly instead of failing it.
        """
        phis = self._parse_phis(request)
        raw = request.args.get("tenants")
        if (
            not isinstance(raw, list)
            or not raw
            or not all(isinstance(name, str) for name in raw)
        ):
            raise ProtocolError(
                "bad_request", "query_fanout needs a non-empty 'tenants' array"
            )
        tenants = [self.registry.validate_name(name) for name in raw]
        by_shard: dict[int, list[str]] = {}
        for name in tenants:
            owner = (
                shard_for_tenant(name, self.shard_count)
                if self.shard_count > 1
                else self.shard_index
            )
            by_shard.setdefault(owner, []).append(name)
        snapshots: dict[str, EstimatorSnapshot | None] = {}
        missing: list[str] = []
        for shard, names in sorted(by_shard.items()):
            if shard == self.shard_index:
                for name in names:
                    state = self.registry.get(name)
                    if state is None or state.n == 0:
                        snapshots[name] = None
                    else:
                        snapshots[name] = state.estimator.snapshot()
                continue
            deadline.check(f"collecting snapshots from shard {shard}")
            try:
                answer = await self._peer_rpc(
                    shard,
                    {"op": "export_snapshots", "tenants": names},
                    deadline,
                )
            except ProtocolError:
                for name in names:
                    snapshots[name] = None
                continue
            shipped = answer.get("snapshots") if answer.get("ok") else None
            if not isinstance(shipped, dict):
                shipped = {}
            for name in names:
                snapshots[name] = self._decode_snapshot(shipped.get(name))
        ordered = [snapshots.get(name) for name in tenants]
        missing = [
            name for name, snap in zip(tenants, ordered) if snap is None
        ]
        if all(snap is None for snap in ordered):
            raise ProtocolError(
                "no_data",
                f"none of {tenants!r} holds data anywhere in the layout",
            )
        deadline.check("merging fan-out snapshots")
        merged = merge_snapshots(
            ordered,
            strict=False,
            seed=self.registry.tenant_seed("#fanout"),
            backend=self.backend,
        )
        quantiles: list[float] = []
        for phi in phis:
            deadline.check(f"fan-out querying phi={phi:g}")
            quantiles.append(merged.query(phi))
        report = merged.report
        coverage = report.weight_coverage if report is not None else 1.0
        self.metrics.counter("fanout_queries_total").increment()
        return {
            "tenants": tenants,
            "quantiles": quantiles,
            "n": merged.n,
            "coverage": coverage,
            "missing": missing,
            "degraded": bool(missing),
        }

    @staticmethod
    def _decode_snapshot(encoded: Any) -> EstimatorSnapshot | None:
        if not isinstance(encoded, str):
            return None
        try:
            restored = persist.loads(base64.b64decode(encoded.encode("ascii")))
        except (persist.CheckpointError, binascii.Error, ValueError):
            return None
        return restored if isinstance(restored, EstimatorSnapshot) else None
