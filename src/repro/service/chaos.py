"""Deterministic chaos injection for the serving tier.

The same philosophy as :class:`repro.cluster.faults.FaultPlan`: a chaos
plan is a *script*, keyed by deterministic sequence numbers rather than
timers or randomness, so every chaos test replays identically and the
assertion can be exact ("request 3 sees 50 ms of injected latency; the
connection serving request 5 is reset; the apply of batch 2 crashes")
instead of probabilistic.

Faults the middleware can inject, each mapped to the seam it attacks:

* ``latency_at``     — hold a request for a scripted delay before the
  handler runs (slow dependency / GC pause / network jitter);
* ``reset_at``       — abort the connection instead of responding
  (peer crash / LB connection churn); the *server-side* work still
  completes, which is exactly what an at-least-once client must expect;
* ``crash_at``       — raise :class:`ChaosCrash` inside the handler; the
  dispatcher must map it to an explicit ``internal`` error response
  (the replint ``service-hygiene`` pass forbids swallowing it);
* ``apply_crash_at`` — fail the ingest worker's apply of the scripted
  batch, which is what trips a tenant's circuit breaker in tests;
* ``die_at``         — hard ``os._exit`` mid-request, a stand-in for
  SIGKILL, for crash-safe-restart tests.

Request sequence numbers count every decoded request, 0-based, in
arrival order; apply sequence numbers count applied batches, 0-based,
across all tenants.  One plan instance is single-use (faults fire once).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ChaosCrash", "ChaosPlan", "CHAOS_EXIT_CODE"]

#: Exit code of an injected mid-request death (mirrors the pool's fault
#: exit code so operators can tell injected deaths from real ones).
CHAOS_EXIT_CODE = 70


class ChaosCrash(Exception):
    """An injected handler failure; must surface as an explicit error."""

    def __init__(self, seq: int, where: str) -> None:
        super().__init__(f"chaos: injected crash in {where} (seq {seq})")
        self.seq = seq
        self.where = where


@dataclass
class ChaosPlan:
    """A deterministic script of service-level faults.

    :ivar latency_at: ``{request_seq: seconds}`` — injected delay before
        the handler runs.
    :ivar reset_at: request seqs whose connection is aborted instead of
        answered.
    :ivar crash_at: request seqs whose handler raises :class:`ChaosCrash`.
    :ivar apply_crash_at: applied-batch seqs whose ingest apply fails.
    :ivar die_at: request seq at which the whole process hard-exits
        (``os._exit``), simulating SIGKILL mid-request.
    """

    latency_at: dict[int, float] = field(default_factory=dict)
    reset_at: frozenset[int] | set[int] = field(default_factory=frozenset)
    crash_at: frozenset[int] | set[int] = field(default_factory=frozenset)
    apply_crash_at: frozenset[int] | set[int] = field(default_factory=frozenset)
    die_at: int | None = None

    def __post_init__(self) -> None:
        self._request_seq = 0
        self._apply_seq = 0
        self._fired_latency: set[int] = set()
        self._fired_crashes: set[int] = set()
        self._fired_applies: set[int] = set()

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "ChaosPlan":
        """Build a plan from plain JSON data (the ``--chaos`` file)."""
        known = {
            "latency_at",
            "reset_at",
            "crash_at",
            "apply_crash_at",
            "die_at",
        }
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ValueError(f"unknown chaos plan keys: {unknown}")
        return cls(
            latency_at={
                int(seq): float(delay)
                for seq, delay in raw.get("latency_at", {}).items()
            },
            reset_at=frozenset(int(seq) for seq in raw.get("reset_at", ())),
            crash_at=frozenset(int(seq) for seq in raw.get("crash_at", ())),
            apply_crash_at=frozenset(
                int(seq) for seq in raw.get("apply_crash_at", ())
            ),
            die_at=(int(raw["die_at"]) if raw.get("die_at") is not None else None),
        )

    @classmethod
    def from_file(cls, path: str | os.PathLike[str]) -> "ChaosPlan":
        """Load a JSON chaos plan (what ``repro serve --chaos`` reads)."""
        with open(path, encoding="utf-8") as handle:
            raw = json.load(handle)
        if not isinstance(raw, dict):
            raise ValueError(f"chaos plan must be a JSON object, got {raw!r}")
        return cls.from_dict(raw)

    # -- request-path hooks (called by the server dispatcher) ----------

    def next_request_seq(self) -> int:
        """Allocate the next request sequence number."""
        seq = self._request_seq
        self._request_seq += 1
        return seq

    def take_latency(self, seq: int) -> float:
        """Scripted delay for this request (0.0 when none); fires once."""
        if seq in self._fired_latency:
            return 0.0
        delay = self.latency_at.get(seq, 0.0)
        if delay > 0.0:
            self._fired_latency.add(seq)
        return delay

    def takes_reset(self, seq: int) -> bool:
        """Whether this request's connection should be aborted."""
        return seq in self.reset_at

    def maybe_crash(self, seq: int, where: str) -> None:
        """Raise the scripted handler crash for this request; fires once."""
        if seq in self.crash_at and seq not in self._fired_crashes:
            self._fired_crashes.add(seq)
            raise ChaosCrash(seq, where)

    def maybe_die(self, seq: int) -> None:
        """Hard-exit the process at the scripted request (SIGKILL twin)."""
        if self.die_at is not None and seq == self.die_at:
            os._exit(CHAOS_EXIT_CODE)

    # -- ingest-path hooks (called by the tenant apply worker) ---------

    def next_apply_seq(self) -> int:
        """Allocate the next applied-batch sequence number."""
        seq = self._apply_seq
        self._apply_seq += 1
        return seq

    def maybe_apply_crash(self, seq: int, tenant: str) -> None:
        """Raise the scripted ingest-apply failure; fires once per seq."""
        if seq in self.apply_crash_at and seq not in self._fired_applies:
            self._fired_applies.add(seq)
            raise ChaosCrash(seq, f"ingest apply for tenant {tenant!r}")
