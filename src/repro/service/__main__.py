"""``python -m repro.service`` — run the quantile service directly."""

from repro.service.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
