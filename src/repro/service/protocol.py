"""The wire surface of the quantile service: framing, codes, responses.

Two encodings share one request vocabulary:

* **Line/JSON** (the native protocol): every request is a single JSON
  object on its own line; every response is a single JSON object on its
  own line.  A request names its ``op`` and, for tenant-scoped ops, the
  ``tenant``; ``id`` is echoed verbatim so clients can pipeline;
  ``deadline_ms`` is the caller's end-to-end budget, which the server
  propagates into queueing, merging, and query work.
* **HTTP/1.1 shim**: a minimal GET/POST mapping onto the same ops so
  ``curl`` and load balancers can speak to the service without a client
  library.  The shim is deliberately small — one request per connection,
  ``Connection: close`` — because the line protocol is the real surface.

Every failure is *explicit*: the server never silently drops a request.
Failures map to one error code from :data:`ERROR_CODES` (and, through
the shim, to the analogous HTTP status — ``overloaded`` is 429 with a
``Retry-After`` hint, ``deadline_exceeded`` is 504, and so on).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "ERROR_CODES",
    "HTTP_STATUS",
    "MAX_LINE_BYTES",
    "OPS",
    "ProtocolError",
    "Request",
    "encode_http_response",
    "encode_response",
    "error_response",
    "http_request_to_request",
    "is_http_preamble",
    "ok_response",
    "parse_line",
]

#: Operations the service understands.
OPS = frozenset(
    {
        "ingest",
        "query_many",
        "inverse_quantile",
        "snapshot",
        "health",
        "ready",
        "metrics",
        "route",
        "shards",
        "query_fanout",
        "export_snapshots",
    }
)

#: Error codes a response may carry; the service emits nothing else.
ERROR_CODES = frozenset(
    {
        "bad_request",  # malformed frame, unknown op, invalid arguments
        "unknown_tenant",  # tenant-scoped read for a tenant that has no data
        "overloaded",  # admission control shed the request (429-style)
        "deadline_exceeded",  # the caller's budget ran out mid-flight
        "ingest_failed",  # the batch was rejected (NaN, injected fault)
        "circuit_open",  # the tenant's ingest path is tripped; reads degrade
        "degraded_unavailable",  # degraded mode has no fallback snapshot yet
        "no_data",  # the tenant exists but holds zero elements
        "rate_limited",  # the tenant's token bucket is empty (429-style)
        "shard_unavailable",  # the owning worker shard could not be reached
        "shutting_down",  # graceful shutdown in progress
        "internal",  # handler exception, mapped — never swallowed
    }
)

#: HTTP status the shim uses per error code.
HTTP_STATUS = {
    "bad_request": 400,
    "unknown_tenant": 404,
    "no_data": 404,
    "overloaded": 429,
    "rate_limited": 429,
    "shard_unavailable": 503,
    "deadline_exceeded": 504,
    "ingest_failed": 422,
    "circuit_open": 503,
    "degraded_unavailable": 503,
    "shutting_down": 503,
    "internal": 500,
}

#: Upper bound on one request line; longer frames are a protocol error
#: (a bound keeps one client from ballooning server memory).
MAX_LINE_BYTES = 8 * 1024 * 1024

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ", b"OPTIONS ")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """A request the server cannot act on, with its response error code."""

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code


@dataclass(frozen=True, slots=True)
class Request:
    """One decoded request, whichever encoding it arrived in."""

    op: str
    tenant: str | None = None
    request_id: Any = None
    deadline_ms: float | None = None
    args: dict[str, Any] = field(default_factory=dict)


def parse_line(raw: bytes) -> Request:
    """Decode one line-protocol request; raises :class:`ProtocolError`."""
    if len(raw) > MAX_LINE_BYTES:
        raise ProtocolError(
            "bad_request", f"request line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            "bad_request", f"request is not a JSON object: {exc}"
        ) from exc
    if not isinstance(body, dict):
        raise ProtocolError(
            "bad_request", f"request must be a JSON object, got {type(body).__name__}"
        )
    op = body.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            "bad_request",
            f"unknown op {op!r}; expected one of {sorted(OPS)}",
        )
    tenant = body.get("tenant")
    if tenant is not None and not isinstance(tenant, str):
        raise ProtocolError("bad_request", "tenant must be a string")
    deadline_ms = body.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, (int, float)) or isinstance(
            deadline_ms, bool
        ) or deadline_ms <= 0:
            raise ProtocolError(
                "bad_request", f"deadline_ms must be a positive number, got "
                f"{deadline_ms!r}"
            )
        deadline_ms = float(deadline_ms)
    args = {
        key: value
        for key, value in body.items()
        if key not in ("op", "tenant", "id", "deadline_ms")
    }
    return Request(
        op=op,
        tenant=tenant,
        request_id=body.get("id"),
        deadline_ms=deadline_ms,
        args=args,
    )


def ok_response(request_id: Any, **body: Any) -> dict[str, Any]:
    """The success envelope of one request."""
    response: dict[str, Any] = {"ok": True}
    if request_id is not None:
        response["id"] = request_id
    response.update(body)
    return response


def error_response(
    request_id: Any, code: str, message: str, **extra: Any
) -> dict[str, Any]:
    """The explicit-failure envelope; ``code`` is from :data:`ERROR_CODES`."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    response: dict[str, Any] = {
        "ok": False,
        "error": {"code": code, "message": message, **extra},
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def encode_response(response: dict[str, Any]) -> bytes:
    """One response object as one line of UTF-8 JSON (newline included)."""
    return json.dumps(response, separators=(",", ":")).encode("utf-8") + b"\n"


# ----------------------------------------------------------------------
# HTTP/1.1 shim
# ----------------------------------------------------------------------

def is_http_preamble(first_line: bytes) -> bool:
    """Whether the first bytes of a connection look like an HTTP request."""
    return first_line.startswith(_HTTP_METHODS)


def _query_args(query: str) -> dict[str, list[str]]:
    args: dict[str, list[str]] = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        args.setdefault(key, []).append(value)
    return args


def _float_arg(args: dict[str, list[str]], name: str) -> float | None:
    values = args.get(name)
    if not values:
        return None
    try:
        return float(values[-1])
    except ValueError as exc:
        raise ProtocolError(
            "bad_request", f"query parameter {name}={values[-1]!r} is not a number"
        ) from exc


def http_request_to_request(
    method: str, target: str, body: bytes
) -> Request:
    """Map one shim HTTP request onto the shared :class:`Request` form.

    Routes: ``GET /health``, ``GET /ready``, ``GET /metrics``,
    ``GET /shards``, ``GET /route?tenant=T``,
    ``GET /query?tenant=T&phi=0.5&phi=0.99``,
    ``GET /fanout?phi=0.5&fanout_tenant=a&fanout_tenant=b``,
    ``GET /inverse?tenant=T&value=3.2``, ``GET /snapshot?tenant=T``,
    ``POST /ingest?tenant=T`` with a JSON body ``{"values": [...]}``.
    """
    parts = urlsplit(target)
    route = parts.path.rstrip("/") or "/"
    args = _query_args(parts.query)
    tenant = args["tenant"][-1] if "tenant" in args else None
    deadline_ms = _float_arg(args, "deadline_ms")
    if method == "GET":
        if route == "/health":
            return Request(op="health", deadline_ms=deadline_ms)
        if route == "/ready":
            return Request(op="ready", deadline_ms=deadline_ms)
        if route == "/metrics":
            return Request(op="metrics", deadline_ms=deadline_ms)
        if route == "/shards":
            return Request(op="shards", deadline_ms=deadline_ms)
        if route == "/route":
            return Request(op="route", tenant=tenant, deadline_ms=deadline_ms)
        if route == "/fanout":
            phis = []
            for raw in args.get("phi", ()):
                try:
                    phis.append(float(raw))
                except ValueError as exc:
                    raise ProtocolError(
                        "bad_request",
                        f"query parameter phi={raw!r} is not a number",
                    ) from exc
            tenants = list(args.get("fanout_tenant", ()))
            return Request(
                op="query_fanout",
                deadline_ms=deadline_ms,
                args={"phis": phis, "tenants": tenants},
            )
        if route == "/query":
            phis = []
            for raw in args.get("phi", ()):
                try:
                    phis.append(float(raw))
                except ValueError as exc:
                    raise ProtocolError(
                        "bad_request",
                        f"query parameter phi={raw!r} is not a number",
                    ) from exc
            return Request(
                op="query_many",
                tenant=tenant,
                deadline_ms=deadline_ms,
                args={"phis": phis},
            )
        if route == "/inverse":
            return Request(
                op="inverse_quantile",
                tenant=tenant,
                deadline_ms=deadline_ms,
                args={"value": _float_arg(args, "value")},
            )
        if route == "/snapshot":
            persist = args.get("persist", ["0"])[-1] not in ("0", "", "false")
            return Request(
                op="snapshot",
                tenant=tenant,
                deadline_ms=deadline_ms,
                args={"persist": persist},
            )
        raise ProtocolError("bad_request", f"no route GET {route}")
    if method == "POST":
        if route == "/ingest":
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    "bad_request", f"ingest body is not JSON: {exc}"
                ) from exc
            if not isinstance(payload, dict):
                raise ProtocolError("bad_request", "ingest body must be an object")
            return Request(
                op="ingest",
                tenant=tenant,
                deadline_ms=deadline_ms,
                args={"values": payload.get("values")},
            )
        raise ProtocolError("bad_request", f"no route POST {route}")
    raise ProtocolError("bad_request", f"method {method} is not supported")


def encode_http_response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    """One complete ``Connection: close`` HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    if status == 429:
        head += "Retry-After: 1\r\n"
    head += "Connection: close\r\n\r\n"
    return head.encode("ascii") + body
