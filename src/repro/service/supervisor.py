"""The multi-core serving supervisor: N workers, one port, one owner each.

One supervisor process spawns N worker processes (N = cores by default).
Every worker runs the full :class:`~repro.service.server.QuantileService`
event loop on the *same* public TCP port via ``SO_REUSEPORT`` — the
kernel load-balances incoming connections across the workers' listening
sockets, so there is no user-space proxy on the accept path.  Tenants are
deterministically shard-mapped
(:func:`repro.service.tenants.shard_for_tenant`), so every tenant's
sketch lives on exactly one worker and ingest never takes a cross-process
lock; a request that lands on the wrong worker is forwarded one loopback
hop to the owner (or a smart client asks ``route`` once and connects to
the owner's shard port directly).

The port-reservation trick: the supervisor binds the public port and one
loopback shard port per worker with ``SO_REUSEPORT`` but **never calls
listen()** on them.  A bound, non-listening socket reserves the address
(nobody else can take it) while receiving no connections (the kernel
only balances across *listening* sockets) — so the concrete port numbers
are fixed for the supervisor's lifetime and a respawned worker re-binds
exactly the address its predecessor held.

Liveness is the supervisor's other job: each worker's ``Process.sentinel``
is watched on the event loop; a crashed worker is respawned with backoff
and recovers its shard's tenants from its own rotating checkpoint chain
(`worker-<shard>/` under the checkpoint root), while the sibling workers
keep answering throughout.  Teardown reuses the pool's escalation
machinery (:func:`repro.runtime.pool.reap_processes`): SIGTERM so workers
drain and flush, then join → SIGTERM → SIGKILL so no zombie survives.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing as mp
import os
import signal
import socket
import sys
from dataclasses import dataclass, replace
from multiprocessing.connection import Connection
from typing import Any

from repro.persist import checkpoint_generations, move_checkpoint_chain
from repro.runtime.pool import reap_processes
from repro.service.server import QuantileService, ServiceConfig
from repro.service.tenants import shard_for_tenant, tenant_chain_name

__all__ = [
    "ServiceSupervisor",
    "default_worker_count",
    "rehome_checkpoints",
    "serve_supervised",
]

#: Bound on one worker's boot (recovery included) before the supervisor
#: gives up on it.
_READY_TIMEOUT_SECONDS = 60.0

#: Respawn backoff: ``base * consecutive_crashes`` capped at ``max``.
_RESPAWN_BACKOFF_SECONDS = 0.5
_RESPAWN_MAX_BACKOFF_SECONDS = 5.0

#: Boot-time spawn retries before the supervisor fails outright.
_BOOT_SPAWN_ATTEMPTS = 3

_WORKER_DIR_PREFIX = "worker-"


def default_worker_count() -> int:
    """Workers to run when ``--workers`` is 0/auto: one per usable core."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


# ----------------------------------------------------------------------
# Checkpoint re-homing
# ----------------------------------------------------------------------

def _chains_under(directory: str) -> set[str]:
    """Tenant names with at least one chain generation in ``directory``."""
    names: set[str] = set()
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return names
    for entry in entries:
        name = tenant_chain_name(entry)
        if name is not None:
            names.add(name)
    return names


def rehome_checkpoints(root: str, workers: int, keep: int = 2) -> int:
    """Move tenant checkpoint chains into the ``workers``-wide layout.

    The single-process service keeps chains directly under ``root``; a
    ``workers > 1`` layout keeps each shard's chains under
    ``root/worker-<shard>/`` with ``shard = shard_for_tenant(name,
    workers)``.  This walks ``root`` and every ``worker-*/`` directory
    and moves each tenant's whole chain (atomic per-generation
    ``os.replace``) to wherever the *target* layout says it belongs — so
    old single-process checkpoints boot into the multi-worker layout,
    and a layout with a different worker count re-shards losslessly.
    Returns the number of tenants moved.
    """
    sources: dict[str, list[str]] = {}  # tenant -> directories holding frames
    for name in _chains_under(root):
        sources.setdefault(name, []).append(root)
    try:
        entries = os.listdir(root)
    except FileNotFoundError:
        entries = []
    for entry in sorted(entries):
        subdir = os.path.join(root, entry)
        if not entry.startswith(_WORKER_DIR_PREFIX) or not os.path.isdir(subdir):
            continue
        for name in _chains_under(subdir):
            sources.setdefault(name, []).append(subdir)
    moved = 0
    for name, src_dirs in sorted(sources.items()):
        if workers == 1:
            target_dir = root
        else:
            target_dir = os.path.join(
                root, f"{_WORKER_DIR_PREFIX}{shard_for_tenant(name, workers)}"
            )
        stem = f"tenant-{name}.ckpt"
        any_moved = False
        for src_dir in src_dirs:
            if os.path.abspath(src_dir) == os.path.abspath(target_dir):
                continue
            os.makedirs(target_dir, exist_ok=True)
            src_stem = os.path.join(src_dir, stem)
            dst_stem = os.path.join(target_dir, stem)
            if os.path.exists(dst_stem):
                # A generation already present in the *target* layout is
                # the one a worker flushed last; frames duplicated at
                # another stem (an interrupted earlier re-home) are
                # stale — merge gap generations in, drop the rest so no
                # straggler can be resurrected by a later layout change.
                for src_gen, dst_gen in zip(
                    checkpoint_generations(src_stem, keep),
                    checkpoint_generations(dst_stem, keep),
                ):
                    if not os.path.exists(src_gen):
                        continue
                    if os.path.exists(dst_gen):
                        os.remove(src_gen)
                    else:
                        os.replace(src_gen, dst_gen)
                        any_moved = True
            elif move_checkpoint_chain(src_stem, dst_stem, keep):
                any_moved = True
        if any_moved:
            moved += 1
    return moved


# ----------------------------------------------------------------------
# Worker side (module-level: spawn-safe)
# ----------------------------------------------------------------------

def _worker_main(config: ServiceConfig, conn: Connection) -> None:
    """Entry point of one worker process (spawn start method)."""
    asyncio.run(_worker_serve(config, conn))


async def _worker_serve(config: ServiceConfig, conn: Connection) -> None:
    service = QuantileService(config)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, service.request_shutdown)
    host, port = await service.start()
    recovery = service.recovery
    if recovery is not None and (recovery.restored or recovery.unrecoverable):
        print(
            f"# shard {config.shard_index} recovered "
            f"{len(recovery.restored)} tenant(s), "
            f"{len(recovery.unrecoverable)} unrecoverable",
            file=sys.stderr,
            flush=True,
        )
    # Parent-death watch: the supervisor holds its pipe end open for the
    # worker's whole life, so *any* readability here is EOF — the parent
    # is gone.  Shut down gracefully (drain + checkpoint flush), exactly
    # as on SIGTERM, so orphaned workers never linger and never lose
    # acknowledged state.
    loop.add_reader(conn.fileno(), service.request_shutdown)
    try:
        conn.send(("ready", config.shard_index, port))
    except (BrokenPipeError, OSError):
        service.request_shutdown()
    try:
        await service.wait_stopped()
    finally:
        with contextlib.suppress(OSError):
            loop.remove_reader(conn.fileno())
        with contextlib.suppress(OSError):
            conn.close()


# ----------------------------------------------------------------------
# Supervisor side
# ----------------------------------------------------------------------

@dataclass
class _WorkerHandle:
    shard: int
    process: mp.process.BaseProcess
    conn: Connection
    port: int


class ServiceSupervisor:
    """Own the sockets, the worker processes, and their liveness."""

    def __init__(self, config: ServiceConfig, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not hasattr(socket, "SO_REUSEPORT"):
            raise RuntimeError(
                "this platform has no SO_REUSEPORT; run with --workers 1"
            )
        self.config = config
        self.workers = workers
        self._ctx = mp.get_context("spawn")
        self._public_socket: socket.socket | None = None
        self._shard_sockets: list[socket.socket] = []
        self._public_addr = (config.host, 0)
        self.shard_ports: tuple[int, ...] = ()
        self._handles: dict[int, _WorkerHandle] = {}
        self._crashes: dict[int, int] = {}
        self._respawn_tasks: set[asyncio.Task[None]] = set()
        self._stopping = False
        self._stopped = asyncio.Event()
        self._shutdown_started = False

    # -- sockets -------------------------------------------------------

    @staticmethod
    def _reserve(host: str, port: int) -> socket.socket:
        """Bind (but never listen on) an SO_REUSEPORT address.

        The bound socket pins the concrete port for the supervisor's
        lifetime; because it does not listen, the kernel delivers every
        connection to the workers' listening sockets on the same
        address.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((host, port))
        except BaseException:
            sock.close()
            raise
        return sock

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Reserve ports, re-home checkpoints, boot every worker."""
        self._public_socket = self._reserve(self.config.host, self.config.port)
        bound = self._public_socket.getsockname()
        self._public_addr = (str(bound[0]), int(bound[1]))
        if self.workers > 1:
            for _ in range(self.workers):
                sock = self._reserve("127.0.0.1", 0)
                self._shard_sockets.append(sock)
            self.shard_ports = tuple(
                int(sock.getsockname()[1]) for sock in self._shard_sockets
            )
        if self.config.checkpoint_dir is not None:
            rehome_checkpoints(
                self.config.checkpoint_dir,
                self.workers,
                self.config.keep_generations,
            )
        try:
            for shard in range(self.workers):
                await self._spawn(shard, attempts=_BOOT_SPAWN_ATTEMPTS)
        except BaseException:
            await self.shutdown()
            raise
        return self._public_addr

    def request_shutdown(self) -> None:
        """Signal-handler entry point: begin the teardown."""
        if not self._shutdown_started:
            asyncio.ensure_future(self.shutdown())

    async def shutdown(self) -> None:
        """SIGTERM every worker, escalate, release the reserved ports."""
        if self._shutdown_started:
            await self._stopped.wait()
            return
        self._shutdown_started = True
        self._stopping = True
        try:
            for task in list(self._respawn_tasks):
                task.cancel()
            loop = asyncio.get_running_loop()
            handles = list(self._handles.values())
            self._handles.clear()
            for handle in handles:
                with contextlib.suppress(OSError):
                    loop.remove_reader(handle.process.sentinel)
                if handle.process.is_alive():
                    with contextlib.suppress(OSError, ValueError):
                        handle.process.terminate()
            procs = {handle.shard: handle.process for handle in handles}
            if procs:
                # join -> SIGTERM -> SIGKILL, off-loop: a wedged worker
                # costs bounded wall-clock, never a supervisor hang.
                leaked = await loop.run_in_executor(
                    None, reap_processes, procs
                )
                for shard, escalation in sorted(leaked.items()):
                    print(
                        f"# worker shard {shard} needed {escalation} at "
                        "shutdown",
                        file=sys.stderr,
                        flush=True,
                    )
            for handle in handles:
                with contextlib.suppress(OSError):
                    handle.conn.close()
        finally:
            for sock in self._shard_sockets:
                with contextlib.suppress(OSError):
                    sock.close()
            self._shard_sockets.clear()
            if self._public_socket is not None:
                with contextlib.suppress(OSError):
                    self._public_socket.close()
                self._public_socket = None
            self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until a shutdown has fully completed."""
        await self._stopped.wait()

    # -- workers -------------------------------------------------------

    def _worker_config(self, shard: int) -> ServiceConfig:
        checkpoint_dir = self.config.checkpoint_dir
        if checkpoint_dir is not None and self.workers > 1:
            checkpoint_dir = os.path.join(
                checkpoint_dir, f"{_WORKER_DIR_PREFIX}{shard}"
            )
        return replace(
            self.config,
            host=self._public_addr[0],
            port=self._public_addr[1],
            checkpoint_dir=checkpoint_dir,
            shard_index=shard,
            shard_count=self.workers,
            shard_ports=self.shard_ports,
            reuse_port=True,
        )

    async def _spawn(self, shard: int, attempts: int = 1) -> None:
        last_error: Exception | None = None
        for _ in range(max(1, attempts)):
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_worker_main,
                args=(self._worker_config(shard), child_conn),
                name=f"repro-service-worker-{shard}",
            )
            process.start()
            child_conn.close()
            try:
                port = await self._await_ready(parent_conn, shard)
            except RuntimeError as exc:
                last_error = exc
                with contextlib.suppress(OSError):
                    parent_conn.close()
                await asyncio.get_running_loop().run_in_executor(
                    None, reap_processes, {shard: process}
                )
                continue
            handle = _WorkerHandle(
                shard=shard, process=process, conn=parent_conn, port=port
            )
            self._handles[shard] = handle
            self._watch(handle)
            return
        raise RuntimeError(
            f"worker shard {shard} failed to become ready "
            f"after {attempts} attempt(s): {last_error}"
        )

    async def _await_ready(self, conn: Connection, shard: int) -> int:
        loop = asyncio.get_running_loop()
        readable: asyncio.Future[None] = loop.create_future()

        def _on_readable() -> None:
            if not readable.done():
                readable.set_result(None)

        loop.add_reader(conn.fileno(), _on_readable)
        try:
            await asyncio.wait_for(readable, timeout=_READY_TIMEOUT_SECONDS)
            message: Any = conn.recv()
        except (TimeoutError, asyncio.TimeoutError, EOFError, OSError) as exc:
            raise RuntimeError(
                f"worker shard {shard} did not report ready: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            with contextlib.suppress(OSError):
                loop.remove_reader(conn.fileno())
        if (
            not isinstance(message, tuple)
            or len(message) != 3
            or message[0] != "ready"
            or message[1] != shard
        ):
            raise RuntimeError(
                f"worker shard {shard} sent an unexpected handshake: "
                f"{message!r}"
            )
        return int(message[2])

    def _watch(self, handle: _WorkerHandle) -> None:
        loop = asyncio.get_running_loop()

        def _on_exit() -> None:
            with contextlib.suppress(OSError):
                loop.remove_reader(handle.process.sentinel)
            task = asyncio.ensure_future(self._on_worker_exit(handle))
            self._respawn_tasks.add(task)
            task.add_done_callback(self._respawn_tasks.discard)

        loop.add_reader(handle.process.sentinel, _on_exit)

    async def _on_worker_exit(self, handle: _WorkerHandle) -> None:
        handle.process.join()
        code = handle.process.exitcode
        with contextlib.suppress(OSError):
            handle.conn.close()
        if self._handles.get(handle.shard) is handle:
            del self._handles[handle.shard]
        if self._stopping:
            return
        crashes = self._crashes.get(handle.shard, 0) + 1
        self._crashes[handle.shard] = crashes
        delay = min(
            _RESPAWN_MAX_BACKOFF_SECONDS, _RESPAWN_BACKOFF_SECONDS * crashes
        )
        print(
            f"# worker shard {handle.shard} exited with code {code}; "
            f"respawning in {delay:.1f}s",
            file=sys.stderr,
            flush=True,
        )
        while not self._stopping:
            await asyncio.sleep(delay)
            if self._stopping:
                return
            try:
                await self._spawn(handle.shard)
            except RuntimeError as exc:
                crashes += 1
                self._crashes[handle.shard] = crashes
                delay = min(
                    _RESPAWN_MAX_BACKOFF_SECONDS,
                    _RESPAWN_BACKOFF_SECONDS * crashes,
                )
                print(
                    f"# worker shard {handle.shard} respawn failed: {exc}; "
                    f"retrying in {delay:.1f}s",
                    file=sys.stderr,
                    flush=True,
                )
                continue
            # The worker is serving again from its own checkpoint chain;
            # the counter resets so a later, unrelated crash starts the
            # backoff ladder from the bottom.
            self._crashes[handle.shard] = 0
            return


async def serve_supervised(config: ServiceConfig, workers: int) -> int:
    """Run the supervisor until SIGTERM/SIGINT; the ``repro serve`` path.

    Prints ``READY <host> <port>`` once every worker has reported ready —
    the same handshake the single-process server prints, so launchers and
    benches need not care which layout answered.
    """
    supervisor = ServiceSupervisor(config, workers)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, supervisor.request_shutdown)
    host, port = await supervisor.start()
    print(f"READY {host} {port}", flush=True)
    await supervisor.wait_stopped()
    return 0
