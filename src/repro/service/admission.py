"""Admission control and deadline budgets for the serving tier.

Overload policy, stated once and enforced here:

* every tenant has a **bounded ingest queue**; a batch that does not fit
  is shed *explicitly* — the client gets an ``overloaded`` response with
  a ``retry_after_ms`` hint (the 429 pattern), never a silent drop;
* the server has a **global in-flight cap** so one tenant flooding its
  own queue cannot starve every other tenant of event-loop time;
* every request runs under a **deadline**: the caller's ``deadline_ms``
  (or the server default) becomes a :class:`Deadline` that is consulted
  before queueing, while waiting for the apply, and between units of
  query/merge work — so a request that can no longer make its budget
  stops consuming resources instead of completing uselessly late.

Everything here is explicit bookkeeping on the single event-loop thread;
there are no locks and no timing races to tune.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    import asyncio

__all__ = [
    "AdmissionController",
    "Deadline",
    "DeadlineExceeded",
    "Overloaded",
    "RateLimited",
    "TokenBucket",
]


class Overloaded(Exception):
    """Admission control shed this request; retry after the hint."""

    def __init__(self, message: str, retry_after_ms: float) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class RateLimited(Exception):
    """A per-tenant rate limit rejected this request; retry after the hint."""

    def __init__(self, message: str, retry_after_ms: float) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class TokenBucket:
    """Per-tenant token bucket: ``rate`` tokens/s, ``burst`` capacity.

    Tokens accrue continuously on the injected monotonic clock and are
    spent one per admitted request.  An empty bucket rejects with
    :class:`RateLimited` carrying the exact time until the next token —
    never a silent drop.  Enforced *before* admission control so a
    tenant over its contract cannot consume in-flight slots that belong
    to well-behaved tenants.
    """

    __slots__ = ("rate", "burst", "_clock", "_tokens", "_updated", "rejected_total")

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0.0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()
        #: Lifetime count of rejected admissions (metrics).
        self.rejected_total = 0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0.0:
            self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)
        self._updated = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled on read)."""
        self._refill()
        return self._tokens

    def admit(self, tenant: str) -> None:
        """Spend one token or reject with :class:`RateLimited`."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return
        self.rejected_total += 1
        wait_ms = (1.0 - self._tokens) / self.rate * 1000.0
        raise RateLimited(
            f"tenant {tenant!r} is over its {self.rate:g} req/s rate limit "
            f"(burst {self.burst})",
            retry_after_ms=max(1.0, wait_ms),
        )


class DeadlineExceeded(Exception):
    """The request's time budget ran out before the work completed."""


class Deadline:
    """A monotonic time budget that travels with one request.

    ``budget`` of ``None`` means unbounded (used internally; client
    requests always carry the server default at minimum).
    """

    __slots__ = ("_clock", "_expires_at")

    def __init__(
        self,
        budget_seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._clock = clock
        self._expires_at = (
            None if budget_seconds is None else clock() + budget_seconds
        )

    @classmethod
    def from_ms(
        cls,
        deadline_ms: float | None,
        default_seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Deadline":
        """The budget a request runs under: its own, else the default."""
        if deadline_ms is None:
            return cls(default_seconds, clock)
        return cls(deadline_ms / 1000.0, clock)

    def remaining(self) -> float | None:
        """Seconds left, floored at zero; ``None`` when unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def check(self, doing: str) -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent.

        Called between units of work (queue admission, per-quantile query
        steps, merge construction) so deadlines propagate *into* the
        compute, not just around the socket.
        """
        if self.expired:
            raise DeadlineExceeded(f"deadline expired while {doing}")


class AdmissionController:
    """Bounded-queue, explicit-shed admission for the whole server.

    :param max_inflight: concurrent requests allowed past the front door.
    :param retry_after_ms: hint attached to every shed response.
    """

    def __init__(self, max_inflight: int, retry_after_ms: float = 1000.0) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self._max_inflight = max_inflight
        self._retry_after_ms = retry_after_ms
        self._inflight = 0
        self.shed_total = 0

    @property
    def inflight(self) -> int:
        """Requests currently being served."""
        return self._inflight

    def admit(self) -> None:
        """Take one in-flight slot or shed with :class:`Overloaded`."""
        if self._inflight >= self._max_inflight:
            self.shed_total += 1
            raise Overloaded(
                f"server is at its {self._max_inflight}-request in-flight "
                "limit",
                retry_after_ms=self._retry_after_ms,
            )
        self._inflight += 1

    def release(self) -> None:
        """Return one in-flight slot (paired with every ``admit``)."""
        if self._inflight <= 0:
            raise RuntimeError("release() without a matching admit()")
        self._inflight -= 1

    def enqueue(
        self,
        queue: "asyncio.Queue[Any]",
        item: Any,
        *,
        tenant: str,
        deadline: Deadline,
    ) -> None:
        """Put one batch on a tenant's bounded queue or shed explicitly.

        Never blocks: a full queue is an immediate ``overloaded`` answer
        (with a retry hint scaled to the queue depth), because queueing
        behind a deadline the batch cannot make helps nobody.
        """
        deadline.check(f"waiting for tenant {tenant!r} queue admission")
        if queue.full():
            self.shed_total += 1
            raise Overloaded(
                f"tenant {tenant!r} ingest queue is full "
                f"({queue.maxsize} batches pending)",
                retry_after_ms=self._retry_after_ms,
            )
        queue.put_nowait(item)
