"""Operational metrics for the serving tier, in the Twitter-commons mould.

``MetricRegistry`` is the single place the server records what it is
doing: monotonically increasing counters (requests, sheds, errors),
point-in-time gauges (queue depths, breaker states, recovery time), and
bounded histograms for latency percentiles.  Everything is exposed two
ways — a plain dict for the JSON ``metrics`` op and a text rendering
(``name{label="value"} number`` lines, one per sample) for the
``/metrics`` HTTP endpoint, so a scraper needs no client library.

The registry is deliberately dependency-free and single-threaded: the
asyncio event loop is the only writer, so there is no locking, and a
histogram is a fixed ring of the last ``window`` observations — O(1)
per record, O(window log window) per percentile read, bounded memory no
matter how long the process lives.
"""

from __future__ import annotations

from collections import deque
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "merge_metric_payloads",
    "render_payload_text",
]

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted(labels.items()))


def _render_name(name: str, key: _LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f'{label}="{value}"' for label, value in key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0: counters only go up)."""
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value, settable to anything numeric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Percentiles over a bounded window of the latest observations.

    Keeps the last ``window`` recorded values in a ring; ``percentile``
    sorts on demand.  ``count`` and ``sum`` cover the full lifetime, so
    rate math stays correct even as old samples fall out of the ring.
    """

    __slots__ = ("_ring", "count", "sum")

    def __init__(self, window: int = 2048) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._ring: deque[float] = deque(maxlen=window)
        self.count = 0
        self.sum = 0.0

    def record(self, value: float) -> None:
        value = float(value)
        self._ring.append(value)
        self.count += 1
        self.sum += value

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 1) of the current window."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile must be in [0, 1], got {q}")
        if not self._ring:
            return 0.0
        ordered = sorted(self._ring)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def snapshot(self) -> dict[str, float]:
        """The summary the registry exports for this histogram."""
        return {
            "count": float(self.count),
            "sum": self.sum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricRegistry:
    """Named, optionally labelled counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, _LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, _LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``name`` + labels, created on first use."""
        key = (name, _label_key(labels))
        found = self._counters.get(key)
        if found is None:
            found = self._counters[key] = Counter()
        return found

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``name`` + labels, created on first use."""
        key = (name, _label_key(labels))
        found = self._gauges.get(key)
        if found is None:
            found = self._gauges[key] = Gauge()
        return found

    def histogram(self, name: str, window: int = 2048, **labels: str) -> Histogram:
        """The histogram for ``name`` + labels, created on first use."""
        key = (name, _label_key(labels))
        found = self._histograms.get(key)
        if found is None:
            found = self._histograms[key] = Histogram(window)
        return found

    def to_dict(self) -> dict[str, Any]:
        """Every sample, as plain data for the JSON ``metrics`` op."""
        return {
            "counters": {
                _render_name(name, key): counter.value
                for (name, key), counter in sorted(self._counters.items())
            },
            "gauges": {
                _render_name(name, key): gauge.value
                for (name, key), gauge in sorted(self._gauges.items())
            },
            "histograms": {
                _render_name(name, key): histogram.snapshot()
                for (name, key), histogram in sorted(self._histograms.items())
            },
        }

    def render_text(self) -> str:
        """The scrape format: one ``name{labels} value`` line per sample."""
        lines: list[str] = []
        for (name, key), counter in sorted(self._counters.items()):
            lines.append(f"{_render_name(name, key)} {counter.value}")
        for (name, key), gauge in sorted(self._gauges.items()):
            lines.append(f"{_render_name(name, key)} {gauge.value:g}")
        for (name, key), histogram in sorted(self._histograms.items()):
            for stat, value in histogram.snapshot().items():
                stat_key = key + (("stat", stat),)
                lines.append(f"{_render_name(name, stat_key)} {value:g}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Cross-worker aggregation
# ----------------------------------------------------------------------
#
# In the multi-process layout every worker owns its own registry; the
# worker answering a ``/metrics`` scrape collects each peer's
# ``to_dict()`` payload and merges them here.  Counters and gauges sum
# across workers (sheds, requests, queue depths are all additive over
# disjoint shards); histogram *percentiles* cannot be merged honestly
# from summaries, so each worker's histogram rides through re-labelled
# with ``worker="N"`` instead of pretending a merged p99 exists.

def _relabel(rendered: str, worker: int) -> str:
    label = f'worker="{worker}"'
    if rendered.endswith("}"):
        return f"{rendered[:-1]},{label}}}"
    return f"{rendered}{{{label}}}"


def merge_metric_payloads(
    payloads: dict[int, dict[str, Any]]
) -> dict[str, Any]:
    """One aggregate payload from per-worker ``to_dict()`` payloads.

    ``payloads`` maps worker shard index to that worker's payload.
    Counters and gauges with the same rendered name sum; histograms are
    kept per-worker under a ``worker="N"`` label.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, float]] = {}
    for worker in sorted(payloads):
        payload = payloads[worker]
        for rendered, value in payload.get("counters", {}).items():
            counters[rendered] = counters.get(rendered, 0) + int(value)
        for rendered, value in payload.get("gauges", {}).items():
            gauges[rendered] = gauges.get(rendered, 0.0) + float(value)
        for rendered, stats in payload.get("histograms", {}).items():
            histograms[_relabel(rendered, worker)] = dict(stats)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
        "workers": sorted(payloads),
    }


def render_payload_text(payload: dict[str, Any]) -> str:
    """The scrape text rendering of a (possibly merged) payload dict."""
    lines: list[str] = []
    for rendered, count in sorted(payload.get("counters", {}).items()):
        lines.append(f"{rendered} {count}")
    for rendered, value in sorted(payload.get("gauges", {}).items()):
        lines.append(f"{rendered} {value:g}")
    for rendered, stats in sorted(payload.get("histograms", {}).items()):
        for stat, value in stats.items():
            lines.append(f"{_relabel_stat(rendered, stat)} {value:g}")
    return "\n".join(lines) + "\n"


def _relabel_stat(rendered: str, stat: str) -> str:
    label = f'stat="{stat}"'
    if rendered.endswith("}"):
        return f"{rendered[:-1]},{label}}}"
    return f"{rendered}{{{label}}}"
