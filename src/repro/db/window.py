"""Windowed quantiles: tumbling and sliding windows over a stream.

Monitoring workloads rarely want all-time quantiles; they want "the p99
over the last million requests".  Two operators cover the standard window
shapes, both built from the paper's machinery:

* :class:`TumblingWindowQuantiles` — disjoint fixed-size windows; each
  window is one unknown-N estimator, closed and reported when full.
* :class:`SlidingWindowQuantiles` — the most recent ``window`` elements,
  approximated by ``panes`` sub-summaries: the stream is cut into panes of
  ``window / panes`` elements, each summarised independently, and a query
  **merges the live panes' snapshots** with the Section 6 coordinator
  (:func:`repro.core.parallel.merge_snapshots`).  Expiry is at pane
  granularity, so a query covers within one pane of ``window`` most
  recent elements — the classic pane trade-off, tightened by raising
  ``panes``.
"""

from __future__ import annotations

import random
from collections import deque
from collections.abc import Callable, Iterable, Sequence

from repro.core.parallel import merge_snapshots
from repro.core.params import Plan, plan_parameters
from repro.core.policy import CollapsePolicy
from repro.core.unknown_n import EstimatorSnapshot, UnknownNQuantiles

__all__ = ["TumblingWindowQuantiles", "SlidingWindowQuantiles", "WindowReport"]


class WindowReport:
    """One closed tumbling window's answers."""

    __slots__ = ("index", "start", "end", "quantiles")

    def __init__(
        self, index: int, start: int, end: int, quantiles: dict[float, float]
    ) -> None:
        self.index = index
        self.start = start  # first stream position in the window (0-based)
        self.end = end  # one past the last position
        self.quantiles = quantiles

    def __repr__(self) -> str:
        return (
            f"WindowReport(index={self.index}, span=[{self.start}, {self.end}), "
            f"quantiles={self.quantiles})"
        )


class TumblingWindowQuantiles:
    """Quantiles per disjoint window of ``window`` elements.

    :param phis: quantiles reported when each window closes.
    :param on_close: optional callback receiving each
        :class:`WindowReport` as its window completes.

    Example::

        windows = TumblingWindowQuantiles(
            window=100_000, phis=[0.5, 0.99], eps=0.005, delta=1e-4, seed=2
        )
        for value in stream:
            windows.update(value)
        hourly = windows.reports
    """

    def __init__(
        self,
        window: int,
        phis: Sequence[float],
        eps: float,
        delta: float,
        *,
        on_close: Callable[[WindowReport], None] | None = None,
        policy: CollapsePolicy | None = None,
        seed: int | None = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._phis = sorted(set(phis))
        if not self._phis:
            raise ValueError("at least one quantile is required")
        self._window = window
        self._plan: Plan = plan_parameters(
            eps, delta, num_quantiles=len(self._phis), policy=policy
        )
        self._policy = policy
        self._rng = random.Random(seed)
        self._on_close = on_close
        self._reports: list[WindowReport] = []
        self._seen = 0
        self._current = self._fresh_estimator()

    def _fresh_estimator(self) -> UnknownNQuantiles:
        return UnknownNQuantiles(
            plan=self._plan, policy=self._policy, seed=self._rng.randrange(2**62)
        )

    def update(self, value: float) -> None:
        """Consume one stream element; closes the window when it fills."""
        self._current.update(value)
        self._seen += 1
        if self._current.n == self._window:
            report = WindowReport(
                index=len(self._reports),
                start=self._seen - self._window,
                end=self._seen,
                quantiles=dict(
                    zip(self._phis, self._current.query_many(self._phis))
                ),
            )
            self._reports.append(report)
            if self._on_close is not None:
                self._on_close(report)
            self._current = self._fresh_estimator()

    def extend(self, values: Iterable[float]) -> None:
        """Consume many stream elements."""
        for value in values:
            self.update(value)

    def query(self, phi: float) -> float:
        """A quantile of the *current, partially filled* window."""
        return self._current.query(phi)

    @property
    def reports(self) -> list[WindowReport]:
        """All closed windows, oldest first."""
        return list(self._reports)

    @property
    def window(self) -> int:
        """Window size in elements."""
        return self._window

    @property
    def seen(self) -> int:
        """Total stream elements consumed."""
        return self._seen

    @property
    def memory_elements(self) -> int:
        """Element slots held (one live estimator)."""
        return self._current.memory_elements


class SlidingWindowQuantiles:
    """Quantiles over (approximately) the most recent ``window`` elements.

    :param panes: number of sub-summaries the window is cut into; expiry
        granularity is ``window / panes`` elements.

    Example::

        sliding = SlidingWindowQuantiles(
            window=1_000_000, panes=10, eps=0.01, delta=1e-4, seed=3
        )
        for latency in stream:
            sliding.update(latency)
            ...
            p99_of_last_million = sliding.query(0.99)
    """

    def __init__(
        self,
        window: int,
        eps: float,
        delta: float,
        *,
        panes: int = 8,
        policy: CollapsePolicy | None = None,
        seed: int | None = None,
    ) -> None:
        if panes < 1:
            raise ValueError(f"panes must be >= 1, got {panes}")
        if window < panes:
            raise ValueError(f"window {window} smaller than panes {panes}")
        self._pane_size = -(-window // panes)  # ceil
        self._panes = panes
        self._window = window
        self._plan: Plan = plan_parameters(eps, delta, policy=policy)
        self._policy = policy
        self._rng = random.Random(seed)
        self._closed: deque[EstimatorSnapshot] = deque(maxlen=panes)
        self._current = self._fresh_estimator()
        self._seen = 0

    def _fresh_estimator(self) -> UnknownNQuantiles:
        return UnknownNQuantiles(
            plan=self._plan, policy=self._policy, seed=self._rng.randrange(2**62)
        )

    def update(self, value: float) -> None:
        """Consume one stream element; rotates panes as they fill."""
        self._current.update(value)
        self._seen += 1
        if self._current.n == self._pane_size:
            self._closed.append(self._current.snapshot())
            self._current = self._fresh_estimator()
            # Keep at most enough closed panes to cover the window beyond
            # the live pane (deque maxlen already drops the oldest).
            while (len(self._closed) * self._pane_size) > self._window:
                self._closed.popleft()

    def extend(self, values: Iterable[float]) -> None:
        """Consume many stream elements."""
        for value in values:
            self.update(value)

    def query(self, phi: float) -> float:
        """A phi-quantile of the covered suffix of the stream."""
        snapshots = list(self._closed)
        if self._current.n > 0:
            snapshots.append(self._current.snapshot())
        if not snapshots:
            raise ValueError("no data has been observed yet")
        return merge_snapshots(
            snapshots, seed=self._rng.randrange(2**62)
        ).query(phi)

    def query_many(self, phis: Sequence[float]) -> list[float]:
        """Several quantiles of the covered suffix (one merge)."""
        snapshots = list(self._closed)
        if self._current.n > 0:
            snapshots.append(self._current.snapshot())
        if not snapshots:
            raise ValueError("no data has been observed yet")
        merged = merge_snapshots(snapshots, seed=self._rng.randrange(2**62))
        return merged.query_many(phis)

    @property
    def covered(self) -> int:
        """Elements the next query spans (window plus pane slack)."""
        return len(self._closed) * self._pane_size + self._current.n

    @property
    def pane_size(self) -> int:
        """Expiry granularity."""
        return self._pane_size

    @property
    def seen(self) -> int:
        """Total stream elements consumed."""
        return self._seen

    @property
    def memory_elements(self) -> int:
        """Element slots across live pane + retained snapshots."""
        retained = sum(
            sum(len(data) for data, _ in snap.full_buffers) + len(snap.staged)
            for snap in self._closed
        )
        return retained + self._current.memory_elements
