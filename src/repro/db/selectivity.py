"""Selectivity estimation for range predicates.

Query optimisers use quantile summaries to estimate what fraction of a
table satisfies predicates like ``amount <= c`` or ``lo < amount <= hi``
[SALP79].  With an equi-depth summary the estimate interpolates within the
bucket containing the constant, and the eps-approximate boundaries
translate directly into a selectivity error of at most about
``eps + 1/(2 p)`` per endpoint.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

from repro.core.policy import CollapsePolicy
from repro.db.histogram import EquiDepthHistogram

__all__ = ["SelectivityEstimator"]


class SelectivityEstimator:
    """Estimate range-predicate selectivity from a streamed column.

    :param buckets: equi-depth bucket count (more buckets = finer
        interpolation; memory grows only ``O(log log p)``).

    Example::

        sel = SelectivityEstimator(buckets=50, eps=0.005, delta=1e-4, seed=2)
        for row in table:
            sel.observe(row.amount)
        fraction = sel.between(100.0, 500.0)   # ~ P(100 < amount <= 500)
    """

    def __init__(
        self,
        buckets: int = 50,
        eps: float = 0.005,
        delta: float = 1e-4,
        *,
        policy: CollapsePolicy | None = None,
        seed: int | None = None,
    ) -> None:
        self._histogram = EquiDepthHistogram(
            buckets, eps, delta, policy=policy, seed=seed
        )

    def observe(self, value: float) -> None:
        """Feed one column value."""
        self._histogram.insert(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Feed many column values."""
        self._histogram.insert_many(values)

    def at_most(self, constant: float) -> float:
        """Estimated selectivity of ``column <= constant`` in [0, 1]."""
        if self._histogram.rows == 0:
            raise ValueError("no data observed")
        low, high = self._histogram.value_range
        if constant < low:
            return 0.0
        if constant >= high:
            return 1.0
        bounds = [low, *self._histogram.boundaries(), high]
        p = self._histogram.num_buckets
        index = min(p, max(1, bisect.bisect_right(bounds, constant)))
        bucket_low = bounds[index - 1]
        bucket_high = bounds[index]
        if bucket_high > bucket_low:
            within = (constant - bucket_low) / (bucket_high - bucket_low)
        else:
            within = 1.0  # degenerate bucket of identical values
        return min(1.0, ((index - 1) + within) / p)

    def between(self, low: float, high: float) -> float:
        """Estimated selectivity of ``low < column <= high``."""
        if high < low:
            raise ValueError(f"empty range: ({low}, {high}]")
        return max(0.0, self.at_most(high) - self.at_most(low))

    def greater_than(self, constant: float) -> float:
        """Estimated selectivity of ``column > constant``."""
        return max(0.0, 1.0 - self.at_most(constant))

    @property
    def rows(self) -> int:
        """Rows observed so far."""
        return self._histogram.rows

    @property
    def memory_elements(self) -> int:
        """Element slots held by the underlying summary."""
        return self._histogram.memory_elements
