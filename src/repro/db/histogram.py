"""Equi-depth histograms over dynamically growing tables.

An equi-depth (equi-height) histogram with ``p`` buckets stores the
``i/p``-quantiles of a column, ``i = 1..p-1`` [PIHS96].  Against skewed or
clustered data it is far more informative than an equi-width histogram,
and approximate quantiles are an accepted substitute for exact ones in
practice (Section 1.1).

Because the unknown-N estimator answers at any time, the histogram here is
*live*: rows are inserted as they arrive and :meth:`boundaries` /
:meth:`buckets` reflect all rows so far, with every boundary's rank within
``eps * n`` of exact simultaneously with probability ``1 - delta``.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.multi import MultiQuantiles
from repro.core.policy import CollapsePolicy

__all__ = ["EquiDepthHistogram", "Bucket"]


@dataclass(frozen=True, slots=True)
class Bucket:
    """One histogram bucket: value range [low, high] holding ~rows/p rows."""

    low: float
    high: float
    fraction: float  # fraction of rows the bucket is designed to hold


class EquiDepthHistogram:
    """A ``p``-bucket equi-depth histogram maintained in one pass.

    :param buckets: number of buckets ``p``.
    :param eps: rank error allowed for each boundary, as a fraction of the
        current row count.
    :param delta: probability that *any* boundary is out of tolerance.

    Example::

        hist = EquiDepthHistogram(buckets=10, eps=0.005, delta=1e-4, seed=1)
        for row in table:
            hist.insert(row.amount)
        for bucket in hist.buckets():
            print(bucket.low, bucket.high)
    """

    def __init__(
        self,
        buckets: int,
        eps: float,
        delta: float,
        *,
        policy: CollapsePolicy | None = None,
        seed: int | None = None,
    ) -> None:
        if buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {buckets}")
        self._p = buckets
        self._estimator = MultiQuantiles(
            eps, delta, num_quantiles=buckets - 1, policy=policy, seed=seed
        )
        self._min = float("inf")
        self._max = float("-inf")

    def insert(self, value: float) -> None:
        """Insert one row's column value."""
        self._estimator.update(value)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def insert_many(self, values: Iterable[float]) -> None:
        """Insert many rows."""
        for value in values:
            self.insert(value)

    def boundaries(self) -> list[float]:
        """The ``p - 1`` interior bucket boundaries, ascending."""
        if self.rows == 0:
            raise ValueError("histogram is empty")
        values = self._estimator.query_many(
            [i / self._p for i in range(1, self._p)]
        )
        # The estimator's per-boundary guarantees are simultaneous but
        # independent selections can invert by < eps*n ranks on ties;
        # boundaries of a histogram must be monotone.
        for i in range(1, len(values)):
            if values[i] < values[i - 1]:
                values[i] = values[i - 1]
        return values

    def buckets(self) -> list[Bucket]:
        """The full bucket list, spanning [min, max]."""
        bounds = [self._min, *self.boundaries(), self._max]
        return [
            Bucket(low=bounds[i], high=bounds[i + 1], fraction=1.0 / self._p)
            for i in range(self._p)
        ]

    def bucket_of(self, value: float) -> int:
        """Index of the bucket a value falls into (0-based)."""
        if self.rows == 0:
            raise ValueError("histogram is empty")
        return min(self._p - 1, bisect.bisect_right(self.boundaries(), value))

    @property
    def rows(self) -> int:
        """Rows inserted so far."""
        return self._estimator.n

    @property
    def num_buckets(self) -> int:
        """The bucket count p."""
        return self._p

    @property
    def memory_elements(self) -> int:
        """Element slots held by the underlying summary."""
        return self._estimator.memory_elements

    @property
    def value_range(self) -> tuple[float, float]:
        """Observed (min, max) column values."""
        if self.rows == 0:
            raise ValueError("histogram is empty")
        return self._min, self._max
