"""Splitters: value-range data partitioning for parallel databases.

Parallel database systems (the paper cites DB2 and Informix) and
distributed sorts [DNS91] divide a dataset into ``p`` approximately equal
parts by value.  The splitters are simply the ``i/p``-quantiles; an
eps-approximate splitter set guarantees every partition holds between
``(1/p - 2 eps) n`` and ``(1/p + 2 eps) n`` elements.

The paper's concrete acceptance criterion (Section 1.1): "a set of
splitters dividing a very large data set of size N into 100 approximately
equal parts is acceptable if, with probability at least 99.99%, the rank
of each splitter is guaranteed to be no more than 0.001 N elements away
from the corresponding exact splitter" — i.e. ``p = 100, eps = 0.001,
delta = 1e-4``, the default parameters here.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Sequence

from repro.core.multi import MultiQuantiles
from repro.core.policy import CollapsePolicy

__all__ = ["Splitters", "partition_counts"]


class Splitters:
    """Compute ``p``-way range-partition splitters in one pass.

    :param parts: number of partitions ``p`` (default 100).
    :param eps: per-splitter rank tolerance (default 0.001).
    :param delta: probability any splitter exceeds tolerance (default 1e-4).
    """

    def __init__(
        self,
        parts: int = 100,
        eps: float = 0.001,
        delta: float = 1e-4,
        *,
        policy: CollapsePolicy | None = None,
        seed: int | None = None,
    ) -> None:
        if parts < 2:
            raise ValueError(f"need at least 2 partitions, got {parts}")
        self._parts = parts
        self._estimator = MultiQuantiles(
            eps, delta, num_quantiles=parts - 1, policy=policy, seed=seed
        )
        self._cached: list[float] | None = None
        self._cached_at = -1

    def observe(self, value: float) -> None:
        """Feed one element of the dataset to be partitioned."""
        self._estimator.update(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Feed many elements."""
        self._estimator.extend(values)

    def splitters(self) -> list[float]:
        """The ``p - 1`` splitter values, ascending (monotonised)."""
        if self._estimator.n == 0:
            raise ValueError("no data observed")
        if self._cached is None or self._cached_at != self._estimator.n:
            values = self._estimator.query_many(
                [i / self._parts for i in range(1, self._parts)]
            )
            for i in range(1, len(values)):
                if values[i] < values[i - 1]:
                    values[i] = values[i - 1]
            self._cached = values
            self._cached_at = self._estimator.n
        return list(self._cached)

    def assign(self, value: float) -> int:
        """The partition (0-based) a value should be routed to."""
        return bisect.bisect_right(self.splitters(), value)

    @property
    def parts(self) -> int:
        """Number of partitions p."""
        return self._parts

    @property
    def n(self) -> int:
        """Elements observed so far."""
        return self._estimator.n

    @property
    def memory_elements(self) -> int:
        """Element slots held by the underlying summary."""
        return self._estimator.memory_elements


def partition_counts(splitters: Sequence[float], values: Iterable[float]) -> list[int]:
    """Histogram of how many values each splitter-defined partition receives.

    Ground-truth balance checker used by tests and the parallel-sort
    example: counts[i] is the number of values routed to partition i.
    """
    counts = [0] * (len(splitters) + 1)
    for value in values:
        counts[bisect.bisect_right(splitters, value)] += 1
    return counts
