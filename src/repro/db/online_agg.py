"""Online aggregation: progressive quantile answers with running guarantees.

Section 1.5: because Output "does not destroy or modify the state ... it
can be invoked as many times as required", the unknown-N algorithm is an
online aggregation operator in the sense of Hellerstein et al. [Hel97] —
the user watches the estimate refine while the scan is still running.

:class:`OnlineQuantileAggregate` wraps the estimator with the bookkeeping a
UI (or test harness) wants: periodic progress reports carrying the current
estimate, the rank-error guarantee in *rows* (``eps * rows_seen``), and
scan progress when the table size happens to be known.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.policy import CollapsePolicy
from repro.core.unknown_n import UnknownNQuantiles

__all__ = ["OnlineQuantileAggregate", "ProgressReport"]


@dataclass(frozen=True, slots=True)
class ProgressReport:
    """One progressive answer during the scan."""

    rows_seen: int
    estimates: dict[float, float]  # phi -> current estimate
    rank_tolerance: float  # eps * rows_seen, in rows
    confidence: float  # 1 - delta
    fraction_done: float | None  # rows_seen / expected_rows, when known


class OnlineQuantileAggregate:
    """A progressive quantile aggregation operator.

    :param phis: the quantiles being aggregated (e.g. ``[0.25, 0.5, 0.75]``).
    :param report_every: emit a report every this many rows.
    :param on_report: optional callback invoked with each report.
    :param expected_rows: optional table-size estimate (query-optimiser
        guess); only used to report ``fraction_done`` — the algorithm never
        relies on it, which is the whole point of the paper.
    """

    def __init__(
        self,
        phis: Iterable[float],
        eps: float,
        delta: float,
        *,
        report_every: int = 10_000,
        on_report: Callable[[ProgressReport], None] | None = None,
        expected_rows: int | None = None,
        policy: CollapsePolicy | None = None,
        seed: int | None = None,
    ) -> None:
        self._phis = sorted(set(phis))
        if not self._phis:
            raise ValueError("at least one quantile is required")
        if any(not 0.0 < phi <= 1.0 for phi in self._phis):
            raise ValueError("quantiles must be in (0, 1]")
        if report_every < 1:
            raise ValueError(f"report_every must be >= 1, got {report_every}")
        self._eps = eps
        self._delta = delta
        self._estimator = UnknownNQuantiles(
            eps,
            delta,
            num_quantiles=len(self._phis),
            policy=policy,
            seed=seed,
        )
        self._report_every = report_every
        self._on_report = on_report
        self._expected_rows = expected_rows
        self._reports: list[ProgressReport] = []

    def feed(self, value: float) -> ProgressReport | None:
        """Consume one row; returns a report when one is due."""
        self._estimator.update(value)
        if self._estimator.n % self._report_every == 0:
            return self._emit()
        return None

    def feed_many(self, values: Iterable[float]) -> None:
        """Consume many rows, emitting reports on schedule."""
        for value in values:
            self.feed(value)

    def current(self) -> ProgressReport:
        """A report for right now (also recorded in the history)."""
        return self._emit()

    def _emit(self) -> ProgressReport:
        rows = self._estimator.n
        if rows == 0:
            raise ValueError("no rows consumed yet")
        estimates = dict(zip(self._phis, self._estimator.query_many(self._phis)))
        fraction = None
        if self._expected_rows:
            fraction = min(1.0, rows / self._expected_rows)
        report = ProgressReport(
            rows_seen=rows,
            estimates=estimates,
            rank_tolerance=self._eps * rows,
            confidence=1.0 - self._delta,
            fraction_done=fraction,
        )
        self._reports.append(report)
        if self._on_report is not None:
            self._on_report(report)
        return report

    @property
    def history(self) -> list[ProgressReport]:
        """All reports emitted so far, oldest first."""
        return list(self._reports)

    @property
    def rows_seen(self) -> int:
        """Rows consumed so far."""
        return self._estimator.n

    @property
    def memory_elements(self) -> int:
        """Element slots held by the underlying summary."""
        return self._estimator.memory_elements
