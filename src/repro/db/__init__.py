"""Database applications of approximate quantiles (Section 1.1).

The paper motivates its algorithms with four database workloads; each gets
a small, self-contained application built on the core estimators:

* :class:`~repro.db.histogram.EquiDepthHistogram` — maintain the bucket
  boundaries of an equi-depth histogram over a *growing* table ("such a
  histogram should be accurate at all times irrespective of the current
  size of the table" — exactly the unknown-N setting).
* :class:`~repro.db.splitters.Splitters` — value-range partitioning for
  parallel databases and distributed sorting.
* :class:`~repro.db.online_agg.OnlineQuantileAggregate` — a progressive
  (online-aggregation) quantile operator with running confidence metadata.
* :class:`~repro.db.selectivity.SelectivityEstimator` — selectivity of
  range predicates for a query optimiser, from the equi-depth histogram.
"""

from repro.db.groupby import GroupByQuantiles
from repro.db.histogram import EquiDepthHistogram
from repro.db.online_agg import OnlineQuantileAggregate, ProgressReport
from repro.db.selectivity import SelectivityEstimator
from repro.db.splitters import Splitters
from repro.db.window import SlidingWindowQuantiles, TumblingWindowQuantiles, WindowReport

__all__ = [
    "EquiDepthHistogram",
    "GroupByQuantiles",
    "Splitters",
    "OnlineQuantileAggregate",
    "ProgressReport",
    "SelectivityEstimator",
    "TumblingWindowQuantiles",
    "SlidingWindowQuantiles",
    "WindowReport",
]
