"""Per-group quantile aggregation: ``SELECT g, MEDIAN(x) ... GROUP BY g``.

Section 1.3 motivates small, predictable summaries precisely because
"Group By algorithms also compute multiple aggregation results
concurrently": a grouped quantile query runs one summary *per group*, all
resident at once.  This operator plans the (b, k, h) parameters once and
instantiates one unknown-N estimator per group lazily, so the memory cost
is ``groups * b * k`` — predictable, and guarded by an optional group cap
(the usual defence against high-cardinality GROUP BY keys blowing up an
aggregation operator).
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Sequence

from repro.core.params import Plan, plan_parameters
from repro.core.policy import CollapsePolicy
from repro.core.unknown_n import UnknownNQuantiles

__all__ = ["GroupByQuantiles"]


class GroupByQuantiles:
    """Streaming per-group eps-approximate quantiles.

    :param eps: rank guarantee per group (fraction of that group's rows).
    :param delta: failure probability per group and query batch.
    :param num_quantiles: quantiles queried together per group.
    :param max_groups: refuse new groups beyond this count (memory guard);
        ``None`` means unlimited.

    Example::

        agg = GroupByQuantiles(eps=0.01, delta=1e-4, max_groups=64, seed=3)
        for row in orders:
            agg.update(row.region, row.amount)
        for region in agg.groups():
            print(region, agg.query(region, 0.5))
    """

    def __init__(
        self,
        eps: float,
        delta: float,
        *,
        num_quantiles: int = 1,
        policy: CollapsePolicy | None = None,
        max_groups: int | None = None,
        seed: int | None = None,
    ) -> None:
        if max_groups is not None and max_groups < 1:
            raise ValueError(f"max_groups must be >= 1, got {max_groups}")
        self._plan: Plan = plan_parameters(
            eps, delta, num_quantiles=num_quantiles, policy=policy
        )
        self._policy = policy
        self._max_groups = max_groups
        self._rng = random.Random(seed)
        self._estimators: dict[Hashable, UnknownNQuantiles] = {}

    def update(self, group: Hashable, value: float) -> None:
        """Consume one (group, value) row."""
        estimator = self._estimators.get(group)
        if estimator is None:
            if (
                self._max_groups is not None
                and len(self._estimators) >= self._max_groups
            ):
                raise RuntimeError(
                    f"group cap of {self._max_groups} exceeded by new group "
                    f"{group!r}; raise max_groups or pre-aggregate the key"
                )
            estimator = UnknownNQuantiles(
                plan=self._plan,
                policy=self._policy,
                seed=self._rng.randrange(2**62),
            )
            self._estimators[group] = estimator
        estimator.update(value)

    def update_many(self, rows: Iterable[tuple[Hashable, float]]) -> None:
        """Consume many (group, value) rows."""
        for group, value in rows:
            self.update(group, value)

    def query(self, group: Hashable, phi: float) -> float:
        """A phi-quantile of one group's values."""
        return self._estimator_for(group).query(phi)

    def query_many(self, group: Hashable, phis: Sequence[float]) -> list[float]:
        """Several quantiles of one group in one merge pass."""
        return self._estimator_for(group).query_many(phis)

    def query_all(self, phi: float) -> dict[Hashable, float]:
        """The phi-quantile of every group — one aggregation result row each."""
        return {group: est.query(phi) for group, est in self._estimators.items()}

    def _estimator_for(self, group: Hashable) -> UnknownNQuantiles:
        try:
            return self._estimators[group]
        except KeyError:
            raise KeyError(f"no rows seen for group {group!r}") from None

    def groups(self) -> list[Hashable]:
        """Groups observed so far, in first-seen order."""
        return list(self._estimators)

    def group_rows(self, group: Hashable) -> int:
        """Rows consumed for one group."""
        return self._estimator_for(group).n

    @property
    def rows(self) -> int:
        """Total rows consumed across all groups."""
        return sum(est.n for est in self._estimators.values())

    @property
    def plan(self) -> Plan:
        """The shared per-group parameter plan."""
        return self._plan

    @property
    def memory_elements(self) -> int:
        """Element slots held across all group summaries."""
        return sum(est.memory_elements for est in self._estimators.values())

    @property
    def worst_case_memory_elements(self) -> int | None:
        """The predictable ceiling: ``max_groups * b * k`` (None = unbounded)."""
        if self._max_groups is None:
            return None
        return self._max_groups * self._plan.memory
