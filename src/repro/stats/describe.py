"""Streaming descriptive statistics: moments next to quantiles.

The paper's very first motivation (Section 1.1): "Quantiles characterize
distributions of real world data sets and are **less sensitive to outliers
than the moments** (mean and variance)."  This module provides the moment
side of that comparison — a numerically stable (Welford) streaming
aggregator — and a combined :class:`StreamSummary` that carries both, so
applications (and the robustness benchmark E9) can watch the mean get
dragged by outliers while the median stands still.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.core.policy import CollapsePolicy
from repro.kernels import is_nan
from repro.core.unknown_n import UnknownNQuantiles

__all__ = ["MomentAccumulator", "StreamSummary"]


class MomentAccumulator:
    """Count, mean, variance, min, max in O(1) space (Welford's update)."""

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def update(self, value: float) -> None:
        """Consume one element."""
        if is_nan(value):  # NaN would silently poison every moment
            raise ValueError("NaN values cannot be aggregated")
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        """Consume many elements."""
        for value in values:
            self.update(value)

    @property
    def count(self) -> int:
        """Elements consumed."""
        return self._count

    @property
    def mean(self) -> float:
        """Arithmetic mean."""
        if self._count == 0:
            raise ValueError("no data has been observed yet")
        return self._mean

    @property
    def variance(self) -> float:
        """Population variance (n denominator)."""
        if self._count == 0:
            raise ValueError("no data has been observed yet")
        return self._m2 / self._count

    @property
    def sample_variance(self) -> float:
        """Sample variance (n - 1 denominator)."""
        if self._count < 2:
            raise ValueError("sample variance needs at least two values")
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest value seen."""
        if self._count == 0:
            raise ValueError("no data has been observed yet")
        return self._min

    @property
    def maximum(self) -> float:
        """Largest value seen."""
        if self._count == 0:
            raise ValueError("no data has been observed yet")
        return self._max


class StreamSummary:
    """Moments and eps-approximate quantiles of a stream, side by side.

    One pass, constant memory; the business-intelligence "distill summary
    information from huge data sets" use of Section 1.1.

    Example::

        summary = StreamSummary(eps=0.01, delta=1e-4, seed=1)
        summary.extend(stream)
        print(summary.describe())
    """

    def __init__(
        self,
        eps: float = 0.01,
        delta: float = 1e-4,
        *,
        policy: CollapsePolicy | None = None,
        seed: int | None = None,
    ) -> None:
        self._moments = MomentAccumulator()
        self._quantiles = UnknownNQuantiles(
            eps, delta, num_quantiles=7, policy=policy, seed=seed
        )

    def update(self, value: float) -> None:
        """Consume one element (feeds both aggregators)."""
        self._moments.update(value)
        self._quantiles.update(value)

    def extend(self, values: Iterable[float]) -> None:
        """Consume many elements."""
        for value in values:
            self.update(value)

    @property
    def moments(self) -> MomentAccumulator:
        """The moment side (mean, variance, min, max)."""
        return self._moments

    @property
    def quantiles(self) -> UnknownNQuantiles:
        """The quantile side (median, IQR, tails)."""
        return self._quantiles

    @property
    def n(self) -> int:
        """Elements consumed."""
        return self._moments.count

    def describe(self) -> dict[str, float]:
        """The classic describe() row: moments plus a quantile profile."""
        if self.n == 0:
            raise ValueError("no data has been observed yet")
        phis = [0.01, 0.25, 0.5, 0.75, 0.99]
        q01, q25, median, q75, q99 = self._quantiles.query_many(phis)
        return {
            "count": float(self.n),
            "mean": self._moments.mean,
            "stddev": self._moments.stddev,
            "min": self._moments.minimum,
            "q01": q01,
            "q25": q25,
            "median": median,
            "q75": q75,
            "q99": q99,
            "max": self._moments.maximum,
        }

    @property
    def iqr(self) -> float:
        """Interquartile range (robust spread)."""
        q25, q75 = self._quantiles.query_many([0.25, 0.75])
        return q75 - q25

    @property
    def memory_elements(self) -> int:
        """Element slots held (the quantile summary; moments are O(1))."""
        return self._quantiles.memory_elements
