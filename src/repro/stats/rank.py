"""Rank and quantile utilities.

The paper defines the phi-quantile of a dataset of size ``N`` as the element
at position ``ceil(phi * N)`` of the sorted sequence (1-indexed), and calls
an element an *eps-approximate phi-quantile* when its rank lies within
``[(phi - eps) N, (phi + eps) N]``.  Because streams contain duplicates, an
element's "rank" is really a range of positions; every function here uses
the full range so that ties never produce spurious errors.

These exact (memory-hungry) computations are the ground truth against which
the single-pass estimators are validated in tests and benchmarks.
"""

from __future__ import annotations

import bisect
import heapq
import math
from collections.abc import Iterable, Iterator, Sequence

__all__ = [
    "quantile_position",
    "exact_quantile",
    "rank_range",
    "rank_error",
    "is_eps_approximate",
    "weighted_select",
    "weighted_select_many",
    "weighted_quantile",
    "weighted_stream",
]


def quantile_position(phi: float, n: int) -> int:
    """1-indexed position of the phi-quantile in a sorted sequence of size n.

    ``ceil(phi * n)`` clamped to ``[1, n]`` (so ``phi`` slightly above 0
    selects the minimum and ``phi = 1`` the maximum).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0.0 < phi <= 1.0:
        raise ValueError(f"phi must be in (0, 1], got {phi}")
    return min(n, max(1, math.ceil(phi * n)))


def exact_quantile(data: Sequence[float], phi: float) -> float:
    """The exact phi-quantile of ``data`` (sorts a copy; O(N log N))."""
    if not data:
        raise ValueError("cannot take a quantile of an empty dataset")
    ordered = sorted(data)
    return ordered[quantile_position(phi, len(ordered)) - 1]


def rank_range(sorted_data: Sequence[float], value: float) -> tuple[int, int]:
    """The 1-indexed range of ranks occupied by ``value`` in ``sorted_data``.

    When ``value`` is absent it conceptually sits between two ranks; the
    returned pair then brackets that gap (``(j, j + 1)`` where ``j`` counts
    the elements smaller than ``value``), which keeps downstream error
    computations well defined even for estimators that interpolate.
    """
    if not sorted_data:
        raise ValueError("cannot rank against an empty dataset")
    lo = bisect.bisect_left(sorted_data, value)
    hi = bisect.bisect_right(sorted_data, value)
    if lo == hi:  # value absent: it would sit between ranks lo and lo + 1
        return lo, lo + 1
    return lo + 1, hi


def rank_error(sorted_data: Sequence[float], value: float, phi: float) -> int:
    """Distance (in ranks) from ``value`` to the exact phi-quantile position.

    Zero when some copy of ``value`` sits exactly at position
    ``ceil(phi * N)``; otherwise the gap between the target position and the
    nearest rank occupied by ``value``.
    """
    target = quantile_position(phi, len(sorted_data))
    lo, hi = rank_range(sorted_data, value)
    if lo <= target <= hi:
        return 0
    return min(abs(lo - target), abs(hi - target))


def is_eps_approximate(
    sorted_data: Sequence[float], value: float, phi: float, eps: float
) -> bool:
    """Whether ``value`` is an eps-approximate phi-quantile of the data.

    True when the rank range of ``value`` intersects
    ``[(phi - eps) N, (phi + eps) N]``.  The exact quantile position
    ``ceil(phi N)`` is always accepted: for tiny ``N`` (``eps * N < 1``)
    the real-valued band can otherwise exclude even the exact answer, a
    rounding artifact rather than an estimation error.
    """
    if not 0.0 <= eps <= 1.0:
        raise ValueError(f"eps must be in [0, 1], got {eps}")
    n = len(sorted_data)
    lo, hi = rank_range(sorted_data, value)
    position = quantile_position(phi, n)
    lower = min((phi - eps) * n, position)
    upper = max((phi + eps) * n, position)
    return hi >= lower and lo <= upper


def weighted_stream(
    data: Sequence[float], weight: int
) -> Iterator[tuple[float, int]]:
    """Pair every element of a sorted buffer with the buffer's weight.

    A named function (rather than an inline generator expression) so each
    buffer's weight is bound at call time — the inline form would close
    over a shared loop variable and tag every buffer with the last weight.
    """
    return ((value, weight) for value in data)


def weighted_select(
    buffers: Iterable[tuple[Sequence[float], int]], position: int
) -> float:
    """Select the element at ``position`` of the weighted expansion.

    Each input is a pair ``(sorted_elements, weight)``; conceptually every
    element is replicated ``weight`` times and all replicas are sorted
    together.  This walks a k-way merge instead of materialising replicas,
    exactly as the paper's Collapse/Output operators do, so it runs in
    O(total elements * log(#buffers)) time and O(#buffers) extra space.

    :param position: 1-indexed position in the expanded multiset.
    """
    if position < 1:
        raise ValueError(f"position must be >= 1, got {position}")
    merged = heapq.merge(
        *(weighted_stream(data, weight) for data, weight in buffers if weight > 0)
    )
    cumulative = 0
    last = None
    for value, weight in merged:
        cumulative += weight
        last = value
        if cumulative >= position:
            return value
    if last is None:
        raise ValueError("cannot select from empty buffers")
    raise ValueError(
        f"position {position} exceeds total weight {cumulative}"
    )


def weighted_select_many(
    buffers: Iterable[tuple[Sequence[float], int]], positions: Sequence[int]
) -> list[float]:
    """Select several positions of the weighted expansion in one merge pass.

    Equivalent to ``[weighted_select(buffers, p) for p in positions]`` but
    walks the k-way merge once, which is what makes simultaneous-quantile
    queries (equi-depth histograms, splitters) cheap.

    :param positions: 1-indexed positions, in any order; the result aligns
        with the input order.
    """
    order = sorted(range(len(positions)), key=positions.__getitem__)
    for index in order:
        if positions[index] < 1:
            raise ValueError(f"positions must be >= 1, got {positions[index]}")
    pinned = [(data, weight) for data, weight in buffers if weight > 0]
    merged = heapq.merge(*(weighted_stream(data, weight) for data, weight in pinned))
    results: list[float] = [0.0] * len(positions)
    cumulative = 0
    cursor = 0
    for value, weight in merged:
        cumulative += weight
        while cursor < len(order) and positions[order[cursor]] <= cumulative:
            results[order[cursor]] = value
            cursor += 1
        if cursor == len(order):
            return results
    raise ValueError(
        f"position {positions[order[cursor]] if order else 1} exceeds "
        f"total weight {cumulative}"
    )


def weighted_quantile(
    buffers: Iterable[tuple[Sequence[float], int]], phi: float
) -> float:
    """The weighted phi-quantile of a collection of weighted sorted buffers.

    This is the paper's Section 3.4 definition: make ``weight`` copies of
    every element, sort, and read position ``ceil(phi * total_weight)``.
    """
    pinned = [(data, weight) for data, weight in buffers]
    total = sum(len(data) * weight for data, weight in pinned)
    if total <= 0:
        raise ValueError("cannot take a quantile of empty weighted buffers")
    return weighted_select(pinned, quantile_position(phi, total))
