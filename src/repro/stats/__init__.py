"""Statistical substrate: tail bounds and rank utilities.

This subpackage provides the probabilistic machinery the paper's analysis
rests on (Hoeffding's inequality for the non-uniform sampling constraint,
Stein's lemma / Kullback-Leibler divergence for the extreme-value estimator)
together with exact-rank utilities used as ground truth by tests and
benchmarks.
"""

from repro.stats.describe import MomentAccumulator, StreamSummary
from repro.stats.bounds import (
    extreme_sample_size,
    extreme_sample_size_simplified,
    hoeffding_failure_probability,
    kl_bernoulli,
    required_block_mass,
    reservoir_sample_size,
    stein_failure_bound,
)
from repro.stats.rank import (
    exact_quantile,
    is_eps_approximate,
    quantile_position,
    rank_error,
    rank_range,
    weighted_quantile,
    weighted_select,
    weighted_select_many,
)

__all__ = [
    "MomentAccumulator",
    "StreamSummary",
    "extreme_sample_size",
    "extreme_sample_size_simplified",
    "hoeffding_failure_probability",
    "kl_bernoulli",
    "required_block_mass",
    "reservoir_sample_size",
    "stein_failure_bound",
    "exact_quantile",
    "is_eps_approximate",
    "quantile_position",
    "rank_error",
    "rank_range",
    "weighted_quantile",
    "weighted_select",
    "weighted_select_many",
]
