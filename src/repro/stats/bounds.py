"""Large-deviation bounds used by the paper's analysis.

Section 4.1 of the paper bounds the failure probability of the non-uniform
sampling scheme with a variant of Hoeffding's inequality [Hoe63]:

    Pr[|X - E[X]| >= lam] <= 2 * exp(-2 * lam^2 / sum(n_i^2))

where element ``i`` of the sample represents a block of ``n_i`` inputs.
Section 7 sizes the extreme-value estimator with Stein's lemma, whose
exponent is the binary Kullback-Leibler divergence.

All bounds here use natural logarithms; probabilities are plain floats.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = [
    "hoeffding_failure_probability",
    "required_block_mass",
    "reservoir_sample_size",
    "kl_bernoulli",
    "stein_failure_bound",
    "extreme_sample_size",
    "extreme_sample_size_simplified",
]


def hoeffding_failure_probability(
    eps: float, alpha: float, block_sizes: Iterable[int]
) -> float:
    """Failure probability of the non-uniform sampling step (Lemma 2).

    One representative is drawn uniformly from each block; block ``i`` has
    size ``n_i`` and its representative carries weight ``n_i``.  The sample
    is *bad* for a target quantile when the weighted rank drifts by more
    than ``(1 - alpha) * eps * N``.  Lemma 2 bounds the probability of a bad
    sample by::

        2 * exp(-2 * (1 - alpha)^2 * eps^2 * (sum n_i)^2 / sum n_i^2)

    :param eps: overall approximation guarantee epsilon.
    :param alpha: fraction of epsilon budgeted to the deterministic tree;
        the sampler gets the remaining ``(1 - alpha) * eps``.
    :param block_sizes: the sizes ``n_i`` of the sampling blocks.
    :returns: an upper bound on the failure probability (may exceed 1 when
        the sample is too small to promise anything).
    """
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    if not 0.0 <= alpha < 1.0:
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    total = 0
    sum_sq = 0
    for n_i in block_sizes:
        if n_i <= 0:
            raise ValueError(f"block sizes must be positive, got {n_i}")
        total += n_i
        sum_sq += n_i * n_i
    if total == 0:
        return 1.0
    exponent = -2.0 * (1.0 - alpha) ** 2 * eps * eps * total * total / sum_sq
    return min(1.0, 2.0 * math.exp(exponent))


def required_block_mass(eps: float, delta: float, alpha: float) -> float:
    """Right-hand side of the paper's Equation 1.

    The sampling step succeeds with probability at least ``1 - delta``
    provided ``(sum n_i)^2 / sum n_i^2 >= required_block_mass(...)``.  For
    the tree of Figure 3 the left-hand side is bounded below by
    ``min(L_d * k, 8/3 * L_s * k)``, which is what the parameter planner
    compares this value against.

    :returns: ``ln(2 / delta) / (2 * (1 - alpha)^2 * eps^2)``.
    """
    if not 0.0 < eps <= 1.0:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if not 0.0 <= alpha < 1.0:
        raise ValueError(f"alpha must be in [0, 1), got {alpha}")
    return math.log(2.0 / delta) / (2.0 * (1.0 - alpha) ** 2 * eps * eps)


def reservoir_sample_size(eps: float, delta: float) -> int:
    """Sample size for the folklore reservoir-sampling baseline (Section 2.2).

    A uniform sample of size ``s = ln(2/delta) / (2 eps^2)`` has the
    property that its phi-quantile is an eps-approximate phi-quantile of the
    stream with probability at least ``1 - delta`` (uniform blocks in
    Hoeffding's inequality).  The quadratic dependence on ``1/eps`` is what
    makes this baseline impractical and motivates the paper.
    """
    return max(1, math.ceil(required_block_mass(eps, delta, alpha=0.0)))


def kl_bernoulli(p: float, q: float) -> float:
    """Binary Kullback-Leibler divergence ``D(p; q)`` in nats.

    ``D(p; q) = p ln(p/q) + (1-p) ln((1-p)/(1-q))``, with the usual
    conventions ``0 ln 0 = 0``.  Infinite when ``q`` is 0 or 1 while ``p``
    puts mass there.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if p == q:
        return 0.0
    div = 0.0
    if p > 0.0:
        # replint: disable=float-discipline -- exact KL boundary: q is a
        # caller-given probability, and the q->0 limit is +inf, not a
        # tolerance question
        if q == 0.0:
            return math.inf
        div += p * math.log(p / q)
    if p < 1.0:
        # replint: disable=float-discipline -- exact KL boundary, as above
        if q == 1.0:
            return math.inf
        div += (1.0 - p) * math.log((1.0 - p) / (1.0 - q))
    return div


def stein_failure_bound(s: int, phi: float, eps: float) -> float:
    """Stein's-lemma bound on the extreme estimator's failure probability.

    With a sample of size ``s``, the probability that the ``k``-th smallest
    sample element (``k = phi * s``) falls outside rank ``(phi +/- eps) N``
    is at most::

        exp(-s * D(phi; phi - eps)) + exp(-s * D(phi; phi + eps))

    (Lemma 6 in the paper, summed over the two one-sided bad events).
    When ``phi - eps <= 0`` the low-side event is impossible and only the
    high-side term remains.
    """
    if s <= 0:
        raise ValueError(f"sample size must be positive, got {s}")
    if not 0.0 < phi < 1.0:
        raise ValueError(f"phi must be in (0, 1), got {phi}")
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    bound = 0.0
    if phi - eps > 0.0:
        bound += math.exp(-s * kl_bernoulli(phi, phi - eps))
    if phi + eps < 1.0:
        bound += math.exp(-s * kl_bernoulli(phi, phi + eps))
    return min(1.0, bound)


def extreme_sample_size(phi: float, eps: float, delta: float) -> int:
    """Smallest sample size meeting Section 7's failure guarantee.

    Returns the least ``s`` such that ``stein_failure_bound(s, phi, eps)``
    is at most ``delta``, found by doubling then bisection.  The retained
    memory of the estimator is then ``k = ceil(phi * s)`` elements.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    lo, hi = 1, 1
    while stein_failure_bound(hi, phi, eps) > delta:
        hi *= 2
        if hi > 1 << 62:
            raise ValueError(
                f"no feasible sample size for phi={phi}, eps={eps}, delta={delta}"
            )
    while lo < hi:
        mid = (lo + hi) // 2
        if stein_failure_bound(mid, phi, eps) <= delta:
            hi = mid
        else:
            lo = mid + 1
    return lo


def extreme_sample_size_simplified(phi: float, eps: float, delta: float) -> int:
    """Small-phi closed form for the Section 7 sample size.

    When ``phi`` is small and ``eps`` smaller, ``D(phi; phi +/- eps)`` is
    approximately ``eps^2 / (2 phi)`` (second-order Taylor expansion of the
    KL divergence around ``phi``), so the condition
    ``delta >= 2 exp(-s eps^2 / (2 phi))`` yields::

        s = 2 phi ln(2/delta) / eps^2

    The exact solver :func:`extreme_sample_size` should be preferred; this
    form exists to mirror the paper's simplification and for quick sizing.
    """
    if not 0.0 < phi < 1.0:
        raise ValueError(f"phi must be in (0, 1), got {phi}")
    if not 0.0 < eps < 1.0:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return max(1, math.ceil(2.0 * phi * math.log(2.0 / delta) / (eps * eps)))
