"""Command-line interface: ``python -m repro <command>``.

Three commands mirror the library's main uses:

* ``quantile`` — stream numbers from a file (or stdin) through the
  unknown-N estimator and print the requested quantiles.
* ``plan`` — show the memory plan for an (eps, delta) pair, optionally
  next to the known-N plan for a given n (the Table 1 comparison).
* ``histogram`` — equi-depth bucket boundaries of a numeric stream.

Examples::

    seq 1 1000000 | python -m repro quantile --eps 0.01 --phi 0.5 --phi 0.99
    python -m repro plan --eps 0.001 --delta 1e-4 --n 1000000000
    python -m repro histogram --buckets 10 values.txt
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Iterator, Sequence

from repro.core.known_n import KnownNQuantiles  # noqa: F401  (re-exported intent)
from repro.core.multi import MultiQuantiles
from repro.core.params import plan_known_n, plan_parameters
from repro.core.unknown_n import UnknownNQuantiles
from repro.kernels import BackendUnavailableError, available_backends

__all__ = ["main"]

#: Parsed values per bulk-ingest chunk (matches the disk-file chunk size).
INGEST_CHUNK = 65_536


class _InputError(Exception):
    """A malformed input token, located for the user (file:line token)."""


def _read_value_chunks(
    path: str | None, chunk_values: int = INGEST_CHUNK
) -> Iterator[list[float]]:
    """Whitespace-separated floats from a file (or stdin), in bulk chunks.

    Chunks feed the estimators' ``update_batch`` (one RNG draw per
    sampling block; vectorised on the numpy backend) instead of boxing
    every value through a scalar ``update``.  Malformed tokens raise
    :class:`_InputError` naming the offending token and its line number
    instead of surfacing a raw ``float()`` traceback; NaN tokens are
    rejected here too (they have no rank downstream).
    """
    stream = open(path, "r", encoding="utf-8") if path else sys.stdin
    source = path if path else "<stdin>"
    chunk: list[float] = []
    try:
        for lineno, line in enumerate(stream, start=1):
            for token in line.split():
                try:
                    value = float(token)
                except ValueError:
                    raise _InputError(
                        f"{source}:{lineno}: {token!r} is not a number"
                    ) from None
                if value != value:
                    raise _InputError(
                        f"{source}:{lineno}: {token!r} is NaN, which has no "
                        "rank and cannot be summarised"
                    )
                chunk.append(value)
                if len(chunk) == chunk_values:
                    yield chunk
                    chunk = []
        if chunk:
            yield chunk
    finally:
        if path:
            stream.close()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Space-efficient online quantiles "
            "(Manku, Rajagopalan & Lindsay, SIGMOD 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quantile = sub.add_parser(
        "quantile", help="approximate quantiles of a numeric stream"
    )
    quantile.add_argument("file", nargs="?", help="input file (default: stdin)")
    quantile.add_argument("--eps", type=float, default=0.01)
    quantile.add_argument("--delta", type=float, default=1e-4)
    quantile.add_argument(
        "--phi",
        type=float,
        action="append",
        help="quantile(s) to report (repeatable; default: 0.5)",
    )
    quantile.add_argument("--seed", type=int, default=None)
    quantile.add_argument(
        "--backend",
        choices=["python", "numpy"],
        default=None,
        help="kernel backend (default: $REPRO_BACKEND, else python)",
    )

    plan = sub.add_parser("plan", help="memory plan for (eps, delta)")
    plan.add_argument("--eps", type=float, required=True)
    plan.add_argument("--delta", type=float, default=1e-4)
    plan.add_argument(
        "--n", type=int, default=None, help="also show the known-N plan for this n"
    )

    histogram = sub.add_parser(
        "histogram", help="equi-depth bucket boundaries of a numeric stream"
    )
    histogram.add_argument("file", nargs="?", help="input file (default: stdin)")
    histogram.add_argument("--buckets", type=int, default=10)
    histogram.add_argument("--eps", type=float, default=0.005)
    histogram.add_argument("--delta", type=float, default=1e-4)
    histogram.add_argument("--seed", type=int, default=None)
    histogram.add_argument(
        "--backend",
        choices=["python", "numpy"],
        default=None,
        help="kernel backend (default: $REPRO_BACKEND, else python)",
    )
    return parser


def _cmd_quantile(args: argparse.Namespace) -> int:
    phis = sorted(set(args.phi)) if args.phi else [0.5]
    try:
        estimator = UnknownNQuantiles(
            args.eps,
            args.delta,
            num_quantiles=len(phis),
            seed=args.seed,
            backend=args.backend,
        )
    except BackendUnavailableError as exc:
        print(f"error: {exc} (available: {available_backends()})", file=sys.stderr)
        return 2
    try:
        for chunk in _read_value_chunks(args.file):
            estimator.update_batch(chunk)
    except _InputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if estimator.n == 0:
        print("no input values", file=sys.stderr)
        return 1
    for phi, answer in zip(phis, estimator.query_many(phis)):
        print(f"phi={phi:g}\t{answer!r}")
    print(
        f"# n={estimator.n}  memory={estimator.memory_elements} elements  "
        f"guarantee=+/-{args.eps:g}*n ranks w.p. {1 - args.delta:g}",
        file=sys.stderr,
    )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = plan_parameters(args.eps, args.delta)
    print(
        f"unknown-N: b={plan.b} k={plan.k} h={plan.h} "
        f"alpha={plan.alpha:.3f} memory={plan.memory} elements"
    )
    if args.n is not None:
        known = plan_known_n(args.eps, args.delta, args.n)
        regime = (
            "exact"
            if known.exact
            else ("sampled" if known.rate > 1 else "deterministic")
        )
        print(
            f"known-N (n={args.n}): b={known.b} k={known.k} rate={known.rate} "
            f"memory={known.memory} elements [{regime}]"
        )
        print(f"ratio unknown/known: {plan.memory / known.memory:.2f}")
    return 0


def _cmd_histogram(args: argparse.Namespace) -> int:
    try:
        estimator = MultiQuantiles(
            args.eps,
            args.delta,
            num_quantiles=args.buckets - 1,
            seed=args.seed,
            backend=args.backend,
        )
    except BackendUnavailableError as exc:
        print(f"error: {exc} (available: {available_backends()})", file=sys.stderr)
        return 2
    try:
        for chunk in _read_value_chunks(args.file):
            estimator.extend(chunk)
    except _InputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if estimator.n == 0:
        print("no input values", file=sys.stderr)
        return 1
    for boundary in estimator.equidepth_boundaries(args.buckets):
        print(repr(boundary))
    print(
        f"# n={estimator.n}  buckets={args.buckets}  "
        f"memory={estimator.memory_elements} elements",
        file=sys.stderr,
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "quantile": _cmd_quantile,
        "plan": _cmd_plan,
        "histogram": _cmd_histogram,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
