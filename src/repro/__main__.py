"""Command-line interface: ``python -m repro <command>``.

Three commands mirror the library's main uses:

* ``quantile`` — stream numbers from a file (or stdin) through the
  unknown-N estimator and print the requested quantiles.
* ``plan`` — show the memory plan for an (eps, delta) pair, optionally
  next to the known-N plan for a given n (the Table 1 comparison).
* ``histogram`` — equi-depth bucket boundaries of a numeric stream.

Examples::

    seq 1 1000000 | python -m repro quantile --eps 0.01 --phi 0.5 --phi 0.99
    python -m repro plan --eps 0.001 --delta 1e-4 --n 1000000000
    python -m repro histogram --buckets 10 values.txt
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from repro.core.known_n import KnownNQuantiles  # noqa: F401  (re-exported intent)
from repro.core.multi import MultiQuantiles
from repro.core.params import plan_known_n, plan_parameters
from repro.core.unknown_n import UnknownNQuantiles
from repro.kernels import BackendUnavailableError, available_backends, is_nan

if TYPE_CHECKING:
    from repro.runtime import PoolResult

__all__ = ["main"]

#: Parsed values per bulk-ingest chunk (matches the disk-file chunk size).
INGEST_CHUNK = 65_536


class _InputError(Exception):
    """A malformed input token, located for the user (file:line token)."""


def _read_value_chunks(
    path: str | None, chunk_values: int = INGEST_CHUNK
) -> Iterator[list[float]]:
    """Whitespace-separated floats from a file (or stdin), in bulk chunks.

    Chunks feed the estimators' ``update_batch`` (one RNG draw per
    sampling block; vectorised on the numpy backend) instead of boxing
    every value through a scalar ``update``.  Malformed tokens raise
    :class:`_InputError` naming the offending token and its line number
    instead of surfacing a raw ``float()`` traceback; NaN tokens are
    rejected here too (they have no rank downstream).
    """
    stream = open(path, encoding="utf-8") if path else sys.stdin  # noqa: SIM115
    source = path if path else "<stdin>"
    chunk: list[float] = []
    try:
        for lineno, line in enumerate(stream, start=1):
            for token in line.split():
                try:
                    value = float(token)
                except ValueError:
                    raise _InputError(
                        f"{source}:{lineno}: {token!r} is not a number"
                    ) from None
                if is_nan(value):
                    raise _InputError(
                        f"{source}:{lineno}: {token!r} is NaN, which has no "
                        "rank and cannot be summarised"
                    )
                chunk.append(value)
                if len(chunk) == chunk_values:
                    yield chunk
                    chunk = []
        if chunk:
            yield chunk
    finally:
        if path:
            stream.close()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Space-efficient online quantiles "
            "(Manku, Rajagopalan & Lindsay, SIGMOD 1999)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quantile = sub.add_parser(
        "quantile", help="approximate quantiles of a numeric stream"
    )
    quantile.add_argument("file", nargs="?", help="input file (default: stdin)")
    quantile.add_argument("--eps", type=float, default=0.01)
    quantile.add_argument("--delta", type=float, default=1e-4)
    quantile.add_argument(
        "--phi",
        type=float,
        action="append",
        help="quantile(s) to report (repeatable; default: 0.5)",
    )
    quantile.add_argument("--seed", type=int, default=None)
    quantile.add_argument(
        "--backend",
        choices=["python", "numpy", "native"],
        default=None,
        help="kernel backend (default: $REPRO_BACKEND, else python)",
    )
    _add_parallel_arguments(quantile)

    plan = sub.add_parser("plan", help="memory plan for (eps, delta)")
    plan.add_argument("--eps", type=float, required=True)
    plan.add_argument("--delta", type=float, default=1e-4)
    plan.add_argument(
        "--n", type=int, default=None, help="also show the known-N plan for this n"
    )

    histogram = sub.add_parser(
        "histogram", help="equi-depth bucket boundaries of a numeric stream"
    )
    histogram.add_argument("file", nargs="?", help="input file (default: stdin)")
    histogram.add_argument("--buckets", type=int, default=10)
    histogram.add_argument("--eps", type=float, default=0.005)
    histogram.add_argument("--delta", type=float, default=1e-4)
    histogram.add_argument("--seed", type=int, default=None)
    histogram.add_argument(
        "--backend",
        choices=["python", "numpy", "native"],
        default=None,
        help="kernel backend (default: $REPRO_BACKEND, else python)",
    )
    _add_parallel_arguments(histogram)

    analyze = sub.add_parser(
        "analyze",
        help="replint: the repo's invariant-aware static analysis gates",
        description=(
            "Run the replint passes (determinism, spawn-safety, "
            "float-discipline, api-hygiene) over source trees; "
            "the same engine as `python -m repro.analysis`."
        ),
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        help="files/directories (default: [tool.replint] default-paths)",
    )
    analyze.add_argument(
        "--format",
        choices=["human", "json", "sarif"],
        default="human",
        help="report renderer (default: human)",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json (kept for compatibility)",
    )
    analyze.add_argument(
        "--select",
        action="append",
        metavar="PASS[,PASS...]",
        help="run only the named passes (repeatable and/or "
        "comma-separated)",
    )
    analyze.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings recorded in FILE; fail only on new ones",
    )
    analyze.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record the current findings to FILE and exit 0",
    )
    analyze.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="pyproject.toml to read [tool.replint] from",
    )
    analyze.add_argument(
        "--list-passes",
        action="store_true",
        help="list registered passes and their finding codes, then exit",
    )

    from repro.service.runner import add_serve_parser

    add_serve_parser(sub)
    return parser


def _add_parallel_arguments(subparser: argparse.ArgumentParser) -> None:
    """The shared parallel-ingest flags of the streaming commands."""
    subparser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "ingest with N parallel worker processes (Section 6 on real "
            "processes); with --float64 each worker scans its own byte "
            "range of the file, otherwise parsed values are striped "
            "across workers in chunks"
        ),
    )
    subparser.add_argument(
        "--float64",
        action="store_true",
        help=(
            "treat the input file as packed little-endian float64 records "
            "(the repro.streams.diskfile format) instead of whitespace-"
            "separated text"
        ),
    )
    subparser.add_argument(
        "--start-method",
        choices=["fork", "spawn", "forkserver"],
        default=None,
        help="multiprocessing start method (default: platform default)",
    )


class _EmptyInput(Exception):
    """The input stream held no values at all."""


def _pool_ingest(args: argparse.Namespace, num_quantiles: int) -> PoolResult:
    """Run the multi-process ingest pool for a streaming command.

    Returns a :class:`repro.runtime.PoolResult`; raises :class:`_InputError`
    on malformed text, :class:`_EmptyInput` when there is nothing to
    summarise, and lets backend/worker errors propagate to the caller.
    """
    from repro.core.params import plan_parameters as _plan
    from repro.runtime import run_pool_on_file, run_pool_on_stream
    from repro.streams.diskfile import count_floats

    if args.workers < 1:
        raise _InputError(f"--workers must be >= 1, got {args.workers}")
    plan = _plan(args.eps, args.delta, num_quantiles=num_quantiles)
    if args.float64:
        if not args.file:
            raise _InputError(
                "--float64 needs a file path (stdin is text-only)"
            )
        if count_floats(args.file) == 0:
            raise _EmptyInput
        return run_pool_on_file(
            args.file,
            args.workers,
            plan=plan,
            seed=args.seed,
            backend=args.backend,
            start_method=args.start_method,
        )
    chunks = _read_value_chunks(args.file)
    try:
        first = next(chunks)
    except StopIteration:
        raise _EmptyInput from None
    values = (
        value
        for chunk in _chain_chunks(first, chunks)
        for value in chunk
    )
    return run_pool_on_stream(
        values,
        args.workers,
        plan=plan,
        seed=args.seed,
        backend=args.backend,
        start_method=args.start_method,
    )


def _chain_chunks(
    first: list[float], rest: Iterator[list[float]]
) -> Iterator[list[float]]:
    yield first
    yield from rest


def _pool_footer(args: argparse.Namespace, result: PoolResult) -> str:
    """The stderr summary line of a parallel run."""
    coverage = result.report.weight_coverage
    return (
        f"# n={result.n}  workers={args.workers} "
        f"({result.start_method})  "
        f"rate={result.elements_per_second:,.0f} elems/s  "
        f"shipped={result.shipped_bytes} bytes "
        f"({result.report.shipped_buffers} buffers)  "
        f"merge={result.merge_seconds * 1000:.1f} ms  "
        f"coverage={coverage:.3f}"
    )


def _cmd_quantile(args: argparse.Namespace) -> int:
    phis = sorted(set(args.phi)) if args.phi else [0.5]
    if args.workers is not None:
        return _cmd_quantile_parallel(args, phis)
    try:
        estimator = UnknownNQuantiles(
            args.eps,
            args.delta,
            num_quantiles=len(phis),
            seed=args.seed,
            backend=args.backend,
        )
    except BackendUnavailableError as exc:
        print(f"error: {exc} (available: {available_backends()})", file=sys.stderr)
        return 2
    try:
        if args.float64:
            if not args.file:
                print(
                    "error: --float64 needs a file path (stdin is text-only)",
                    file=sys.stderr,
                )
                return 2
            from repro.streams.diskfile import ingest_file

            ingest_file(estimator, args.file)
        else:
            for chunk in _read_value_chunks(args.file):
                estimator.update_batch(chunk)
    except (_InputError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if estimator.n == 0:
        print("no input values", file=sys.stderr)
        return 1
    for phi, answer in zip(phis, estimator.query_many(phis)):
        print(f"phi={phi:g}\t{answer!r}")
    print(
        f"# n={estimator.n}  memory={estimator.memory_elements} elements  "
        f"guarantee=+/-{args.eps:g}*n ranks w.p. {1 - args.delta:g}",
        file=sys.stderr,
    )
    return 0


def _cmd_quantile_parallel(args: argparse.Namespace, phis: list[float]) -> int:
    from repro.runtime import PoolWorkerError

    try:
        result = _pool_ingest(args, num_quantiles=len(phis))
    except BackendUnavailableError as exc:
        print(f"error: {exc} (available: {available_backends()})", file=sys.stderr)
        return 2
    except _InputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except _EmptyInput:
        print("no input values", file=sys.stderr)
        return 1
    except PoolWorkerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for phi, answer in zip(phis, result.query_many(phis)):
        print(f"phi={phi:g}\t{answer!r}")
    print(_pool_footer(args, result), file=sys.stderr)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = plan_parameters(args.eps, args.delta)
    print(
        f"unknown-N: b={plan.b} k={plan.k} h={plan.h} "
        f"alpha={plan.alpha:.3f} memory={plan.memory} elements"
    )
    if args.n is not None:
        known = plan_known_n(args.eps, args.delta, args.n)
        regime = (
            "exact"
            if known.exact
            else ("sampled" if known.rate > 1 else "deterministic")
        )
        print(
            f"known-N (n={args.n}): b={known.b} k={known.k} rate={known.rate} "
            f"memory={known.memory} elements [{regime}]"
        )
        print(f"ratio unknown/known: {plan.memory / known.memory:.2f}")
    return 0


def _cmd_histogram(args: argparse.Namespace) -> int:
    if args.buckets < 2:
        print(f"error: need at least 2 buckets, got {args.buckets}", file=sys.stderr)
        return 2
    if args.workers is not None:
        return _cmd_histogram_parallel(args)
    try:
        estimator = MultiQuantiles(
            args.eps,
            args.delta,
            num_quantiles=args.buckets - 1,
            seed=args.seed,
            backend=args.backend,
        )
    except BackendUnavailableError as exc:
        print(f"error: {exc} (available: {available_backends()})", file=sys.stderr)
        return 2
    try:
        if args.float64:
            if not args.file:
                print(
                    "error: --float64 needs a file path (stdin is text-only)",
                    file=sys.stderr,
                )
                return 2
            from repro.streams.diskfile import ingest_file

            ingest_file(estimator, args.file)
        else:
            for chunk in _read_value_chunks(args.file):
                estimator.extend(chunk)
    except (_InputError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if estimator.n == 0:
        print("no input values", file=sys.stderr)
        return 1
    for boundary in estimator.equidepth_boundaries(args.buckets):
        print(repr(boundary))
    print(
        f"# n={estimator.n}  buckets={args.buckets}  "
        f"memory={estimator.memory_elements} elements",
        file=sys.stderr,
    )
    return 0


def _cmd_histogram_parallel(args: argparse.Namespace) -> int:
    from repro.runtime import PoolWorkerError

    try:
        result = _pool_ingest(args, num_quantiles=args.buckets - 1)
    except BackendUnavailableError as exc:
        print(f"error: {exc} (available: {available_backends()})", file=sys.stderr)
        return 2
    except _InputError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except _EmptyInput:
        print("no input values", file=sys.stderr)
        return 1
    except PoolWorkerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    phis = [i / args.buckets for i in range(1, args.buckets)]
    for boundary in result.query_many(phis):
        print(repr(boundary))
    print(
        f"# buckets={args.buckets}  " + _pool_footer(args, result).lstrip("# "),
        file=sys.stderr,
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Delegate to the service runner (signal handling lives there)."""
    from repro.service.runner import run_from_args

    return run_from_args(args)


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Delegate to the replint CLI (same engine, same exit codes)."""
    from repro.analysis.__main__ import main as analysis_main

    argv: list[str] = list(args.paths)
    argv.extend(["--format", args.format])
    if args.json:
        argv.append("--json")
    if args.list_passes:
        argv.append("--list-passes")
    for selected in args.select or ():
        argv.extend(["--select", selected])
    if args.baseline is not None:
        argv.extend(["--baseline", args.baseline])
    if args.write_baseline is not None:
        argv.extend(["--write-baseline", args.write_baseline])
    if args.config is not None:
        argv.extend(["--config", args.config])
    return analysis_main(argv)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "quantile": _cmd_quantile,
        "plan": _cmd_plan,
        "histogram": _cmd_histogram,
        "analyze": _cmd_analyze,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
