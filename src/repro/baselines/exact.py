"""Exact streaming quantiles in O(N) memory — the ground-truth oracle.

Pohl [Poh69] showed any single-pass *exact* median algorithm must store at
least N/2 elements, so for large N exactness is hopeless; but below the
sketch's own footprint (N <= b*k) storing everything is simply the right
call, and the known-N planner's "exact" regime does exactly that.  This
class is that regime as a standalone estimator, and the oracle every test
and benchmark compares against.

Insertion keeps a sorted array (``bisect.insort``), so ``update`` is
O(log N) comparisons + O(N) memmove — fine for the dataset sizes where
using it is sensible at all.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable, Sequence

from repro.kernels import is_nan
from repro.stats.rank import quantile_position

__all__ = ["SortedStore"]


class SortedStore:
    """Store everything; answer every quantile exactly."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data: list[float] = []

    def update(self, value: float) -> None:
        """Insert one element, keeping the store sorted."""
        if is_nan(value):
            raise ValueError("NaN values have no rank and cannot be summarised")
        bisect.insort(self._data, value)

    def extend(self, values: Iterable[float]) -> None:
        """Insert many elements (sorts once: cheaper than repeated insort)."""
        added = [float(v) for v in values]
        for value in added:
            if is_nan(value):
                raise ValueError("NaN values have no rank and cannot be summarised")
        self._data.extend(added)
        self._data.sort()

    def query(self, phi: float) -> float:
        """The exact phi-quantile (position ``ceil(phi * N)``)."""
        if not self._data:
            raise ValueError("no data has been observed yet")
        return self._data[quantile_position(phi, len(self._data)) - 1]

    def query_many(self, phis: Sequence[float]) -> list[float]:
        """Several exact quantiles."""
        return [self.query(phi) for phi in phis]

    def rank_of(self, value: float) -> tuple[int, int]:
        """1-indexed rank range occupied by ``value``."""
        from repro.stats.rank import rank_range

        return rank_range(self._data, value)

    @property
    def n(self) -> int:
        """Elements stored."""
        return len(self._data)

    def __len__(self) -> int:
        return len(self._data)

    @property
    def memory_elements(self) -> int:
        """Exactness costs everything: N elements."""
        return len(self._data)
