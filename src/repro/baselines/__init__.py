"""Baseline quantile estimators the paper's algorithm is judged against.

* :class:`~repro.baselines.exact.SortedStore` — the exact answer in O(N)
  memory (insertion into a sorted array).  The ground-truth oracle for
  tests, benchmarks, and the crossover analysis (below which N exactness
  is simply cheaper).
* :class:`~repro.baselines.p2.P2Quantile` — Jain & Chlamtac's P² algorithm
  (CACM 1985): five markers adjusted by parabolic interpolation.  O(1)
  memory and *no guarantee whatsoever* — the classical heuristic
  counterpoint to the paper's provable sketch.  The baselines benchmark
  shows it collapsing on sorted/adversarial arrival orders that the
  paper's algorithm handles by design.
* :class:`~repro.baselines.gk.GKQuantiles` — Greenwald & Khanna's
  deterministic summary (SIGMOD 2001), the paper's direct *successor*:
  also unknown-N, no failure probability, O(eps^-1 log(eps N)) space that
  grows with N.  The successor benchmark quantifies the trade against the
  paper's constant-memory randomised sketch.
* The reservoir-sampling baseline lives in
  :mod:`repro.sampling.reservoir` (it is also a sampler in its own right).
"""

from repro.baselines.exact import SortedStore
from repro.baselines.gk import GKQuantiles
from repro.baselines.p2 import P2Quantile

__all__ = ["SortedStore", "P2Quantile", "GKQuantiles"]
