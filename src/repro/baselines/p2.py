"""The P-squared algorithm (Jain & Chlamtac, CACM 1985).

A classical constant-memory quantile *heuristic*: five markers whose
heights are adjusted by piecewise-parabolic (hence "P^2") interpolation so
that marker 2 tracks the phi-quantile.  It stores exactly five values —
and provides **no distributional or adversarial guarantee of any kind**.

It is included as the guarantee-free counterpoint to the paper's sketch:
on iid streams it is often impressively accurate, but the baselines
benchmark shows it losing by orders of magnitude on sorted or otherwise
structured arrival orders — exactly the failure class the paper's
"efficiency and correctness should be data independent" requirement rules
out.  (P-squared also interpolates, so unlike the paper's algorithms its
answers need not be elements of the input.)
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.kernels import is_nan

__all__ = ["P2Quantile"]


class P2Quantile:
    """Track one phi-quantile with five markers (P^2 heuristic)."""

    __slots__ = ("_phi", "_heights", "_positions", "_desired", "_increments", "_count")

    def __init__(self, phi: float) -> None:
        if not 0.0 < phi < 1.0:
            raise ValueError(f"phi must be in (0, 1), got {phi}")
        self._phi = phi
        self._heights: list[float] = []  # marker heights q_i
        self._positions = [1, 2, 3, 4, 5]  # actual positions n_i
        self._desired = [
            1.0,
            1.0 + 2.0 * phi,
            1.0 + 4.0 * phi,
            3.0 + 2.0 * phi,
            5.0,
        ]
        self._increments = [0.0, phi / 2.0, phi, (1.0 + phi) / 2.0, 1.0]
        self._count = 0

    @property
    def phi(self) -> float:
        """The tracked quantile."""
        return self._phi

    @property
    def n(self) -> int:
        """Elements consumed."""
        return self._count

    @property
    def memory_elements(self) -> int:
        """Five marker heights — the algorithm's whole point."""
        return 5

    def update(self, value: float) -> None:
        """Consume one element."""
        if is_nan(value):
            raise ValueError("NaN values have no rank and cannot be summarised")
        self._count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            if len(self._heights) == 5:
                self._heights.sort()
            return

        q, n = self._heights, self._positions
        # Locate the cell k containing the new value; extremes clamp.
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value >= q[4]:
            q[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and not (q[cell] <= value < q[cell + 1]):
                cell += 1
        for i in range(cell + 1, 5):
            n[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]

        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            gap = self._desired[i] - n[i]
            if (gap >= 1.0 and n[i + 1] - n[i] > 1) or (
                gap <= -1.0 and n[i - 1] - n[i] < -1
            ):
                step = 1 if gap >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        """The P^2 piecewise-parabolic height prediction for marker i."""
        q, n = self._heights, self._positions
        span = n[i + 1] - n[i - 1]
        left = (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
        right = (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        return q[i] + step * (left + right) / span

    def _linear(self, i: int, step: int) -> float:
        """Fallback when the parabola leaves the monotone corridor."""
        q, n = self._heights, self._positions
        return q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])

    def extend(self, values: Iterable[float]) -> None:
        """Consume many elements.

        Random-access inputs are NaN-scanned *before* any mutation, so a
        poisoned batch is rejected atomically (the scalar path's
        guarantee); one-shot iterators are checked element-by-element.
        """
        from repro.kernels import batch_contains_nan, is_random_access

        if is_random_access(values) and batch_contains_nan(values):
            raise ValueError("NaN values have no rank and cannot be summarised")
        for value in values:
            self.update(value)

    def query(self) -> float:
        """The current estimate (marker 2's height).

        For fewer than five observations, the exact quantile of what was
        seen is returned.
        """
        if not self._heights:
            raise ValueError("no data has been observed yet")
        if len(self._heights) < 5 or self._count < 5:
            ordered = sorted(self._heights[: self._count])
            index = max(0, min(len(ordered) - 1, round(self._phi * len(ordered)) - 1))
            return ordered[index]
        return self._heights[2]
