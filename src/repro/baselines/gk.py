"""Greenwald-Khanna quantile summary (SIGMOD 2001) — the successor.

Two years after this paper, Greenwald & Khanna gave a *deterministic*
unknown-N summary with O(eps^-1 log(eps N)) space: a sorted list of tuples
``(v_i, g_i, delta_i)`` where ``g_i`` is the gap in minimum rank to the
previous tuple and ``delta_i`` the extra rank uncertainty, maintaining::

    r_min(i) = sum_{j <= i} g_j,      r_max(i) = r_min(i) + delta_i
    max_i (g_i + delta_i) <= 2 eps n          (the correctness invariant)

It is included as the historical counterpoint the calibration notes call
out (quantile sketches are now standard): GK's memory *grows* with log N
and it has no failure probability; MRL99's memory is constant in N at the
price of randomisation.  The successor benchmark quantifies the trade.

This is the standard simplified GK: a periodic right-to-left COMPRESS that
merges tuple ``i`` into ``i+1`` whenever
``g_i + g_{i+1} + delta_{i+1} < 2 eps n``, without the original's band
hierarchy.  The invariant — hence correctness — is identical; only the
constant in the space bound is slightly worse, which is the usual
engineering trade and is called out so benchmark readers aren't misled.
"""

from __future__ import annotations

import bisect
import math

from repro.kernels import is_nan
from collections.abc import Iterable, Sequence

__all__ = ["GKQuantiles"]


class GKQuantiles:
    """Deterministic eps-approximate quantiles, unknown stream length.

    Every :meth:`query` is guaranteed (no delta) to return an element whose
    rank is within ``eps * n`` of exact.

    :param eps: rank-approximation guarantee.

    Example::

        gk = GKQuantiles(eps=0.01)
        for value in stream:
            gk.update(value)
        median = gk.query(0.5)
    """

    __slots__ = ("_eps", "_values", "_gaps", "_deltas", "_n", "_since_compress")

    def __init__(self, eps: float) -> None:
        if not 0.0 < eps < 1.0:
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        self._eps = eps
        self._values: list[float] = []
        self._gaps: list[int] = []
        self._deltas: list[int] = []
        self._n = 0
        self._since_compress = 0

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Consume one stream element (amortised O(log(summary size)))."""
        if is_nan(value):
            raise ValueError("NaN values have no rank and cannot be summarised")
        index = bisect.bisect_right(self._values, value)
        if index == 0 or index == len(self._values):
            delta = 0  # new extremes carry no uncertainty
        else:
            delta = max(0, math.floor(2.0 * self._eps * self._n) - 1)
        self._values.insert(index, value)
        self._gaps.insert(index, 1)
        self._deltas.insert(index, delta)
        self._n += 1
        self._since_compress += 1
        if self._since_compress >= max(1, int(1.0 / (2.0 * self._eps))):
            self._compress()
            self._since_compress = 0

    def extend(self, values: Iterable[float]) -> None:
        """Consume many stream elements.

        Random-access inputs are NaN-scanned *before* any mutation, so a
        poisoned batch is rejected atomically (the scalar path's
        guarantee); one-shot iterators are checked element-by-element.
        """
        from repro.kernels import batch_contains_nan, is_random_access

        if is_random_access(values) and batch_contains_nan(values):
            raise ValueError("NaN values have no rank and cannot be summarised")
        for value in values:
            self.update(value)

    def _compress(self) -> None:
        """Merge tuples whose combined uncertainty fits the invariant."""
        threshold = math.floor(2.0 * self._eps * self._n)
        values, gaps, deltas = self._values, self._gaps, self._deltas
        index = len(values) - 2
        while index >= 1:  # never merge away the minimum (index 0)
            if gaps[index] + gaps[index + 1] + deltas[index + 1] < threshold:
                gaps[index + 1] += gaps[index]
                del values[index], gaps[index], deltas[index]
            index -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, phi: float) -> float:
        """An eps-approximate phi-quantile (deterministic guarantee)."""
        if self._n == 0:
            raise ValueError("no data has been observed yet")
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        target = max(1, math.ceil(phi * self._n))
        # Return the tuple whose certified rank range [r_min, r_max] sits
        # best around the target; the invariant guarantees the winner's
        # worst-case rank error is at most eps * n.
        best_index = 0
        best_score = None
        r_min = 0
        for index, gap in enumerate(self._gaps):
            r_min += gap
            r_max = r_min + self._deltas[index]
            score = max(target - r_min, r_max - target)
            if best_score is None or score < best_score:
                best_score = score
                best_index = index
        return self._values[best_index]

    def query_many(self, phis: Sequence[float]) -> list[float]:
        """Several quantiles (order preserved)."""
        return [self.query(phi) for phi in phis]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def eps(self) -> float:
        """The deterministic rank guarantee."""
        return self._eps

    @property
    def n(self) -> int:
        """Elements consumed so far."""
        return self._n

    def __len__(self) -> int:
        return self._n

    @property
    def memory_elements(self) -> int:
        """Stored tuples (each holds a value and two counters)."""
        return len(self._values)

    def rank_bounds(self, value: float) -> tuple[int, int]:
        """The summary's (r_min, r_max) bracket for a value's rank."""
        if self._n == 0:
            raise ValueError("no data has been observed yet")
        index = bisect.bisect_right(self._values, value)
        r_min = sum(self._gaps[:index])
        if index == 0:
            return 0, 0
        return r_min, r_min + self._deltas[index - 1]

    def invariant_ok(self) -> bool:
        """Check the GK correctness invariant (test/diagnostic hook)."""
        threshold = math.floor(2.0 * self._eps * self._n)
        return all(
            gap + delta <= max(threshold, 1)
            for gap, delta in zip(self._gaps, self._deltas)
        )
