"""Empirical auditing of estimator configurations.

"Probabilistic guarantees ... are acceptable in practice as long as such
guarantees are very close to 100%" (Section 1.1) — and practitioners
reasonably want to *see* that before trusting a configuration.  This
module runs an estimator against ground truth and reports observed rank
errors and failure rates, in the same form the benchmark harness uses
internally.

Two entry points:

* :func:`audit_run` — one estimator over one stream: worst/mean rank error
  over a phi grid, at chosen checkpoints.
* :func:`audit_failure_rate` — many independent seeds of a configuration
  over one stream: the observed failure frequency to hold against delta.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.reporting import format_table
from repro.stats.rank import is_eps_approximate, rank_error

__all__ = ["AuditReport", "CheckpointResult", "audit_run", "audit_failure_rate"]


@dataclass(frozen=True, slots=True)
class CheckpointResult:
    """Errors observed at one stream prefix."""

    n: int
    worst_error: float  # worst rank error / n over the phi grid
    mean_error: float
    failed_phis: tuple[float, ...]  # phis outside eps at this checkpoint


@dataclass(frozen=True, slots=True)
class AuditReport:
    """Outcome of one audited run."""

    eps: float
    phis: tuple[float, ...]
    checkpoints: tuple[CheckpointResult, ...]
    memory_elements: int
    passed: bool = field(default=True)

    @property
    def worst_error(self) -> float:
        """Worst relative rank error across all checkpoints."""
        return max((c.worst_error for c in self.checkpoints), default=0.0)

    def render(self) -> str:
        """Human-readable table of the audit."""
        rows = [
            [
                f"{c.n:,}",
                f"{c.worst_error:.5f}",
                f"{c.mean_error:.5f}",
                ",".join(f"{phi:g}" for phi in c.failed_phis) or "-",
            ]
            for c in self.checkpoints
        ]
        lines = format_table(
            ["prefix n", "worst err/n", "mean err/n", "phis > eps"], rows
        )
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"eps={self.eps:g}  memory={self.memory_elements} elements  "
            f"verdict={verdict}"
        )
        return "\n".join(lines)


def audit_run(
    estimator: Any,
    stream: Iterable[float],
    *,
    eps: float,
    phis: Sequence[float] = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99),
    checkpoints: Sequence[int] = (),
) -> AuditReport:
    """Stream data through an estimator and compare against exact ranks.

    Stores the whole stream for ground truth, so audit with data sizes
    your memory allows (that is the point of auditing: you do it once,
    offline, before trusting a configuration online).

    :param estimator: anything with ``update(value)`` and ``query(phi)``.
    :param eps: tolerance to judge against (normally the estimator's own).
    :param checkpoints: prefix lengths to audit mid-stream; the final
        prefix is always audited.
    """
    shadow: list[float] = []
    results: list[CheckpointResult] = []
    marks = set(checkpoints)
    for value in stream:
        estimator.update(value)
        shadow.append(value)
        if len(shadow) in marks:
            results.append(_checkpoint(estimator, shadow, eps, phis))
    if not shadow:
        raise ValueError("the audited stream is empty")
    if not results or results[-1].n != len(shadow):
        results.append(_checkpoint(estimator, shadow, eps, phis))
    memory = getattr(estimator, "memory_elements", 0)
    passed = all(not c.failed_phis for c in results)
    return AuditReport(
        eps=eps,
        phis=tuple(phis),
        checkpoints=tuple(results),
        memory_elements=memory,
        passed=passed,
    )


def _checkpoint(
    estimator: Any, shadow: list[float], eps: float, phis: Sequence[float]
) -> CheckpointResult:
    ordered = sorted(shadow)
    n = len(ordered)
    errors = []
    failed = []
    for phi in phis:
        answer = estimator.query(phi)
        errors.append(rank_error(ordered, answer, phi) / n)
        if not is_eps_approximate(ordered, answer, phi, eps):
            failed.append(phi)
    return CheckpointResult(
        n=n,
        worst_error=max(errors),
        mean_error=sum(errors) / len(errors),
        failed_phis=tuple(failed),
    )


def audit_failure_rate(
    estimator_factory: Callable[[int], object],
    data: Sequence[float],
    *,
    eps: float,
    trials: int,
    phis: Sequence[float] = (0.25, 0.5, 0.75),
) -> float:
    """Observed failure frequency over independently seeded runs.

    A run *fails* when any phi's answer falls outside ``eps * n`` ranks.
    Compare the result against the configuration's promised delta.

    :param estimator_factory: ``seed -> estimator``; called per trial.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    ordered = sorted(data)
    failures = 0
    for seed in range(trials):
        estimator = estimator_factory(seed)
        for value in data:
            estimator.update(value)
        if any(
            not is_eps_approximate(ordered, estimator.query(phi), phi, eps)
            for phi in phis
        ):
            failures += 1
    return failures / trials
