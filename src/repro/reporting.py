"""Terminal-friendly rendering of tables and line charts.

The benchmark harness regenerates the paper's tables and figures; this
module renders them for terminals and plain-text result files — aligned
tables, element-count formatting in the paper's "K" units, and an ASCII
line chart for the Figure 4/5 curves. It is plain library code (no
plotting dependencies) and is equally usable by applications that want to
print a quantile summary.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "ascii_chart", "kb"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> list[str]:
    """Right-aligned plain-text table with a rule under the header."""
    table = [list(headers)] + [list(row) for row in rows]
    for row in table:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return lines


def kb(elements: int) -> str:
    """Format an element count the way the paper's tables do (K = 1000)."""
    return f"{elements / 1000:.2f}K"


def ascii_chart(
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    height: int = 12,
    width_per_point: int = 6,
) -> list[str]:
    """Render one or more aligned series as an ASCII line chart.

    :param x_labels: one label per x position (shared by all series).
    :param series: mapping of series name to y values (same length as
        ``x_labels``); each series gets its own glyph.
    :param height: chart rows (y resolution).
    :returns: the chart as a list of text lines, legend included.
    """
    if not series:
        raise ValueError("at least one series is required")
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    points = len(x_labels)
    for name, ys in series.items():
        if len(ys) != points:
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {points}"
            )
    glyphs = "o*x+#@%&"
    all_values = [y for ys in series.values() for y in ys]
    lo, hi = min(all_values), max(all_values)
    span = hi - lo or 1.0

    def row_of(value: float) -> int:
        return int(round((value - lo) / span * (height - 1)))

    grid = [[" "] * (points * width_per_point) for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for x, y in enumerate(ys):
            row = height - 1 - row_of(y)
            col = x * width_per_point + width_per_point // 2
            grid[row][col] = glyph

    lines = []
    for row_index, row in enumerate(grid):
        level = hi - (row_index / (height - 1)) * span
        lines.append(f"{level:>10.0f} |{''.join(row)}")
    axis = "-" * (points * width_per_point)
    lines.append(f"{'':>10} +{axis}")
    labels = "".join(label.center(width_per_point) for label in x_labels)
    lines.append(f"{'':>10}  {labels}")
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>10}  {legend}")
    return lines
