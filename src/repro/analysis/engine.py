"""The replint engine: files, config, suppressions, findings, reports.

replint is an AST-based lint framework for invariants the paper states
but Python cannot enforce at runtime: seeded replayable randomness
(Section 4.5's Hoeffding argument assumes independently *seeded*
samplers), plain-data process boundaries (the Section 6 parallel
protocol), honest float/NaN handling in the rank accounting, and a
layered import graph.  Each invariant is a *pass* (see the sibling
modules); this module provides everything a pass needs so a new pass is
~50 lines:

* :class:`SourceModule` — one parsed file: AST, dotted module name,
  import alias table, per-line suppressions.
* :class:`Pass` + :func:`register` — the pass registry; a pass declares
  its ``name`` and default options and yields :class:`Finding`\\ s.
* :func:`load_config` — per-pass options from ``[tool.replint]`` in
  ``pyproject.toml``, overlaid on the in-code defaults.
* :func:`analyze_paths` — walk files, run applicable passes, apply
  suppressions, return a :class:`Report` (JSON- or human-renderable).

Suppressions are line comments of the form::

    x = random.Random()  # replint: disable=determinism -- state is
                         #   restored below; the seed is never drawn

The justification after ``--`` is mandatory: a suppression without one
is itself reported (RPL001) and does not suppress anything.  A
suppression on a standalone comment line covers the next code line.

The engine intentionally imports nothing from the rest of :mod:`repro`,
so it sits at the bottom of the layer graph its own hygiene pass checks.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.analysis.project import ProjectGraph

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - py3.10 fallback
    tomllib = None  # type: ignore[assignment]

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "SEVERITIES",
    "Config",
    "Finding",
    "Pass",
    "Report",
    "SourceModule",
    "analyze_paths",
    "iter_source_files",
    "load_config",
    "module_name_for",
    "register",
    "registered_passes",
    "resolve_dotted",
]

#: Process exit codes of ``python -m repro.analysis``.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

#: Framework-level finding codes (pass codes live on the passes).
CODE_BAD_SUPPRESSION = "RPL001"
CODE_UNKNOWN_PASS = "RPL002"
CODE_SYNTAX_ERROR = "RPL003"

#: Directory names never descended into when walking a path.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".mypy_cache",
    ".ruff_cache",
    ".pytest_cache",
    ".hypothesis",
    "build",
    "dist",
}

_SUPPRESS_RE = re.compile(
    r"#\s*replint:\s*disable=([A-Za-z0-9_,\- ]+?)\s*(?:--\s*(?P<why>.*\S))?\s*$"
)


#: Valid :attr:`Finding.severity` values, most severe first.  ``error``
#: and ``warning`` both fail the run (exit 1) — replint is a gate, not a
#: suggestion box — but the distinction flows into the SARIF ``level``
#: and lets CI annotate regressions at the right prominence.  ``note``
#: findings are informational and never fail a run by themselves.
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True, slots=True)
class Finding:
    """One diagnostic: where, which pass, which code, and why."""

    path: str
    line: int
    col: int
    code: str
    pass_name: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        """The one-line human form, grep- and editor-friendly."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.pass_name}] {self.message}"
        )

    def to_json(self) -> dict[str, Any]:
        """The stable JSON object form (schema version 2)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "pass": self.pass_name,
            "message": self.message,
            "severity": self.severity,
        }

    def fingerprint(self) -> str:
        """The location-drift-stable identity used by baseline files.

        Deliberately excludes line/column so unrelated edits above a
        known finding do not churn the baseline; path + code + message
        (which names the offending symbol) identifies the finding.
        """
        return f"{self.path}::{self.code}::{self.message}"


@dataclass(frozen=True, slots=True)
class _Suppression:
    """A parsed, justified ``replint: disable`` comment."""

    line: int
    passes: frozenset[str]
    justification: str


class SourceModule:
    """One parsed source file plus the metadata every pass needs."""

    def __init__(self, path: Path, text: str, module: str | None) -> None:
        self.path = path
        #: Path as reported in findings: relative to cwd when possible.
        try:
            self.rel = path.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            self.rel = path.as_posix()
        self.text = text
        self.lines = text.splitlines()
        #: Dotted module name (``repro.core.buffers``) or ``None`` when
        #: the file is not under any package root.
        self.module = module
        self.tree = ast.parse(text, filename=str(path))
        self.suppressions, self.suppression_findings = self._parse_suppressions()
        self.aliases = _import_aliases(self.tree)

    def in_packages(self, packages: Sequence[str]) -> bool:
        """Whether this module falls under any of the dotted prefixes."""
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".") for p in packages
        )

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name of an expression, un-aliased via the import table.

        ``np.random.rand`` resolves to ``numpy.random.rand`` under
        ``import numpy as np``; returns ``None`` for non-name shapes.
        """
        return resolve_dotted(node, self.aliases)

    # -- suppression machinery -----------------------------------------

    def _parse_suppressions(
        self,
    ) -> tuple[dict[int, frozenset[str]], list[Finding]]:
        by_line: dict[int, frozenset[str]] = {}
        findings: list[Finding] = []
        for lineno, comment in self._comments():
            line = self.lines[lineno - 1]
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                if re.search(r"replint:\s*disable", comment):
                    findings.append(
                        Finding(
                            self.rel,
                            lineno,
                            line.find("#") + 1,
                            CODE_BAD_SUPPRESSION,
                            "replint",
                            "malformed replint suppression comment "
                            "(expected '# replint: disable=<pass> -- why')",
                        )
                    )
                continue
            names = frozenset(
                name.strip() for name in match.group(1).split(",") if name.strip()
            )
            why = match.group("why")
            if not why:
                findings.append(
                    Finding(
                        self.rel,
                        lineno,
                        match.start() + 1,
                        CODE_BAD_SUPPRESSION,
                        "replint",
                        "suppression without a justification is ignored; "
                        "write '# replint: disable=<pass> -- <reason>'",
                    )
                )
                continue
            unknown = sorted(
                name for name in names if name != "all" and name not in registry
            )
            if unknown:
                findings.append(
                    Finding(
                        self.rel,
                        lineno,
                        match.start() + 1,
                        CODE_UNKNOWN_PASS,
                        "replint",
                        f"suppression names unknown pass(es): {', '.join(unknown)}"
                        f" (known: {', '.join(sorted(registry))})",
                    )
                )
                names = names - frozenset(unknown)
                if not names:
                    continue
            covered = [lineno]
            # A standalone comment line shields the next code line.
            if line.strip().startswith("#"):
                covered.append(self._next_code_line(lineno))
            for covered_line in covered:
                merged = by_line.get(covered_line, frozenset()) | names
                by_line[covered_line] = merged
        return by_line, findings

    def _comments(self) -> Iterator[tuple[int, str]]:
        """(line, text) of every real comment token in the file.

        Tokenising (rather than scanning raw lines) keeps docstrings and
        string literals that merely *mention* the suppression syntax —
        such as this engine's own documentation — from being parsed as
        suppressions.
        """
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.string
        except tokenize.TokenError:  # pragma: no cover - parse already passed
            return

    def _next_code_line(self, lineno: int) -> int:
        for offset, line in enumerate(self.lines[lineno:], start=lineno + 1):
            if line.strip() and not line.strip().startswith("#"):
                return offset
        return lineno

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether a justified suppression covers this finding's line."""
        names = self.suppressions.get(finding.line)
        if names is None:
            return False
        return "all" in names or finding.pass_name in names


def resolve_dotted(
    node: ast.AST, aliases: Mapping[str, str]
) -> str | None:
    """Resolve a Name/Attribute chain to a dotted name through aliases."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = aliases.get(node.id, node.id)
    parts.append(head)
    return ".".join(reversed(parts))


def _import_aliases(tree: ast.AST) -> dict[str, str]:
    """Local name -> dotted origin, from every import in the file."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


# ----------------------------------------------------------------------
# Pass registry
# ----------------------------------------------------------------------

class Pass:
    """Base class of a replint pass.

    Subclasses set :attr:`name` (the id used in config and suppression
    comments), :attr:`codes` (code -> summary, for ``--list-passes``),
    and :attr:`default_options`; they implement :meth:`check`.
    """

    #: Pass id, e.g. ``"determinism"``.
    name: str = ""
    #: Finding code -> one-line summary.
    codes: dict[str, str] = {}
    #: Options merged under ``[tool.replint.<name>]``.
    default_options: dict[str, Any] = {}

    def applies_to(self, module: SourceModule, options: Mapping[str, Any]) -> bool:
        """Default scoping: the ``packages`` option (empty = everywhere)."""
        packages = list(options.get("packages", ()))
        if not packages:
            return True
        return module.in_packages(packages)

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        """Yield findings for one module.  Subclasses implement this."""
        raise NotImplementedError
        yield  # pragma: no cover

    def project_check(
        self, graph: "ProjectGraph", options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        """Yield whole-program findings over the :class:`ProjectGraph`.

        Called once per run, after every file's per-file :meth:`check`.
        The default is a no-op so per-file passes need not know the
        graph exists; the engine only builds the graph when a selected
        pass overrides this hook.
        """
        return iter(())

    @classmethod
    def wants_project_graph(cls) -> bool:
        """Whether this pass overrides :meth:`project_check`."""
        return cls.project_check is not Pass.project_check


#: name -> pass instance, in registration order.
registry: dict[str, Pass] = {}


def register(cls: type[Pass]) -> type[Pass]:
    """Class decorator adding a pass to the global registry."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"{cls.__name__} must set a pass name")
    registry[instance.name] = instance
    return cls


def registered_passes() -> dict[str, Pass]:
    """The registry, importing the built-in pass modules on first use."""
    from repro.analysis import (  # noqa: F401  (import registers the passes)
        boxing,
        determinism,
        floats,
        hygiene,
        lifecycle,
        native_c,
        reachability,
        rngflow,
        service,
        spawnsafe,
    )

    return registry


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Config:
    """Engine options plus per-pass option mappings."""

    #: Path fragments excluded from the walk (substring match on the
    #: posix path), e.g. test fixture corpora of deliberately bad code.
    exclude: tuple[str, ...] = ()
    #: Paths scanned when the command line names none.
    default_paths: tuple[str, ...] = ("src",)
    #: Per-pass options: pass name -> merged option mapping.
    options: dict[str, dict[str, Any]] = field(default_factory=dict)

    def options_for(self, pass_name: str) -> dict[str, Any]:
        """The merged (defaults + pyproject) options of one pass."""
        return self.options.get(pass_name, {})


def load_config(pyproject: Path | None = None) -> Config:
    """Build a :class:`Config` from ``[tool.replint]`` in pyproject.toml.

    Missing file, missing table, or a py3.10 interpreter without
    :mod:`tomllib` all degrade to the in-code defaults; a present but
    unparseable file raises ``ValueError`` (config errors must be loud).
    """
    raw: dict[str, Any] = {}
    if pyproject is None:
        candidate = Path.cwd() / "pyproject.toml"
        pyproject = candidate if candidate.is_file() else None
    if pyproject is not None and tomllib is not None:
        try:
            with open(pyproject, "rb") as handle:
                raw = tomllib.load(handle).get("tool", {}).get("replint", {})
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"{pyproject}: invalid TOML: {exc}") from exc
    options: dict[str, dict[str, Any]] = {}
    for name, instance in registered_passes().items():
        merged = dict(instance.default_options)
        table = raw.get(name, {})
        if not isinstance(table, dict):
            raise ValueError(
                f"[tool.replint.{name}] must be a table, got {type(table).__name__}"
            )
        merged.update(table)
        options[name] = merged
    return Config(
        exclude=tuple(raw.get("exclude", ())),
        default_paths=tuple(raw.get("default-paths", ("src",))),
        options=options,
    )


# ----------------------------------------------------------------------
# File walking and module naming
# ----------------------------------------------------------------------

def iter_source_files(
    paths: Sequence[Path], exclude: Sequence[str] = ()
) -> Iterator[Path]:
    """Python files under the given files/directories, deterministically.

    Skips byte-code/VCS/cache directories and any path whose posix form
    contains an ``exclude`` fragment.
    """
    for path in paths:
        if path.is_file():
            if path.suffix == ".py" and not _excluded(path, exclude):
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            if any(part.endswith(".egg-info") for part in candidate.parts):
                continue
            if _excluded(candidate, exclude):
                continue
            yield candidate


def _excluded(path: Path, exclude: Sequence[str]) -> bool:
    posix = path.as_posix()
    return any(fragment in posix for fragment in exclude)


def module_name_for(path: Path) -> str | None:
    """Dotted module name of a file, from the enclosing package chain.

    Walks up while ``__init__.py`` siblings exist, so
    ``src/repro/core/buffers.py`` maps to ``repro.core.buffers`` no
    matter where the repo is checked out.  Files outside any package
    (scripts, benchmarks) map to ``None``.
    """
    if path.suffix != ".py":
        return None
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    if len(parts) == 1:
        return None
    if parts[0] == "__init__":
        parts = parts[1:]
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Report:
    """Outcome of one analysis run."""

    findings: tuple[Finding, ...]
    files_checked: int
    suppressed: int
    passes: tuple[str, ...]
    #: Findings filtered out because a ``--baseline`` file records them.
    baselined: int = 0
    #: Baseline fingerprints no current finding matched (fixed or moved);
    #: reported so the baseline can be re-recorded, never a failure.
    stale_baseline: tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        """0 clean, 1 when any error/warning finding survived.

        ``note``-severity findings are informational: they render but do
        not fail the gate.
        """
        failing = any(f.severity != "note" for f in self.findings)
        return EXIT_FINDINGS if failing else EXIT_CLEAN

    def render(self) -> str:
        """Human output: one line per finding plus a summary line."""
        lines = [finding.render() for finding in self.findings]
        verdict = "clean" if not self.findings else f"{len(self.findings)} finding(s)"
        suppressed = f", {self.suppressed} suppressed" if self.suppressed else ""
        baselined = f", {self.baselined} baselined" if self.baselined else ""
        stale = (
            f", {len(self.stale_baseline)} stale baseline entry(ies)"
            if self.stale_baseline
            else ""
        )
        lines.append(
            f"replint: {verdict} in {self.files_checked} file(s)"
            f" [{', '.join(self.passes)}]{suppressed}{baselined}{stale}"
        )
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        """The stable machine-readable form (schema version 2)."""
        return {
            "tool": "replint",
            "version": 2,
            "files_checked": self.files_checked,
            "passes": list(self.passes),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "stale_baseline": list(self.stale_baseline),
            "findings": [finding.to_json() for finding in self.findings],
        }

    def render_json(self) -> str:
        """:meth:`to_json`, serialised with stable key order."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


def analyze_paths(
    paths: Sequence[Path],
    config: Config | None = None,
    select: Sequence[str] | None = None,
) -> Report:
    """Run the (selected) passes over every Python file under ``paths``.

    :param select: pass names to run (default: all registered).
    :raises ValueError: on an unknown pass name in ``select``.
    """
    passes = registered_passes()
    if config is None:
        config = load_config()
    names = list(select) if select else list(passes)
    unknown = sorted(set(names) - set(passes))
    if unknown:
        raise ValueError(
            f"unknown pass(es): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(passes))})"
        )
    findings: list[Finding] = []
    files_checked = 0
    suppressed = 0
    modules: list[SourceModule] = []
    for path in iter_source_files(paths, config.exclude):
        files_checked += 1
        try:
            module = SourceModule(
                path, path.read_text(encoding="utf-8"), module_name_for(path)
            )
        except SyntaxError as exc:
            # A broken file degrades to one RPL003 finding; the rest of
            # the run — including the whole-program phase over every
            # file that *did* parse — proceeds normally.
            findings.append(
                Finding(
                    path.as_posix(),
                    exc.lineno or 1,
                    (exc.offset or 1),
                    CODE_SYNTAX_ERROR,
                    "replint",
                    f"file does not parse: {exc.msg}",
                )
            )
            continue
        modules.append(module)
        findings.extend(module.suppression_findings)
        for name in names:
            instance = passes[name]
            options = config.options_for(name)
            if not instance.applies_to(module, options):
                continue
            for finding in instance.check(module, options):
                if module.is_suppressed(finding):
                    suppressed += 1
                else:
                    findings.append(finding)
    # Whole-program phase: one graph over the already-parsed modules,
    # built only when a selected pass actually asks for it.
    if any(passes[name].wants_project_graph() for name in names):
        from repro.analysis.project import ProjectGraph

        graph = ProjectGraph(modules)
        for name in names:
            instance = passes[name]
            if not instance.wants_project_graph():
                continue
            for finding in instance.project_check(graph, config.options_for(name)):
                owner = graph.module_for_path(finding.path)
                if owner is not None and owner.is_suppressed(finding):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return Report(
        findings=tuple(findings),
        files_checked=files_checked,
        suppressed=suppressed,
        passes=tuple(names),
    )
