"""replint pass ``api-hygiene``: explicit surfaces, one-way layer graph.

A reproduction earns trust partly through its import graph: the kernel
and sampling substrate must not reach up into the runtime that hosts
them, and every module must say what it exports.  Without a machine
check these decay silently — PR 3 era code already grew two private
cross-package imports — and a cycle between, say, ``repro.core`` and
``repro.runtime`` would make the Section 6 worker protocol untestable
in isolation.

Codes:

* ``RPL401`` — a public module without ``__all__``: the import surface
  must be declared, not inferred from naming accidents.
* ``RPL402`` — an import that points *up* the layer order.  Layers are
  configured as a list of module-prefix groups, lowest first; a module
  may import from its own or any lower layer.  Modules matching no
  prefix (the top-level facade, scripts, tests) are exempt.
* ``RPL403`` — importing an underscore-private name from a module in a
  different subpackage; private names are private to their package.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from typing import Any

from repro.analysis.engine import Finding, Pass, SourceModule, register

__all__ = ["ApiHygienePass"]


@register
class ApiHygienePass(Pass):
    """Declared exports; imports flow down the layer order only."""

    name = "api-hygiene"
    codes = {
        "RPL401": "public module lacks __all__",
        "RPL402": "import against the layer order",
        "RPL403": "private name imported across subpackages",
    }
    default_options: dict[str, Any] = {
        "packages": ["repro"],
        # Lowest layer first; prefixes are matched longest-first so a
        # module can sit in a different layer than its parent package
        # (repro.stats.describe builds *on* the estimators while
        # repro.stats.rank sits *under* them).
        "layers": [
            ["repro.reporting", "repro.stats.rank", "repro.stats.bounds",
             "repro.streams", "repro.analysis"],
            ["repro.kernels", "repro.sampling"],
            ["repro.core", "repro.stats"],
            ["repro.baselines", "repro.persist", "repro.db", "repro.audit"],
            ["repro.runtime"],
            ["repro.cluster"],
            ["repro.service"],
        ],
    }

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        yield from self._check_all_declaration(module)
        layers = [
            [str(prefix) for prefix in group]
            for group in options.get("layers", ())
        ]
        source_rank = self._rank(module.module, layers)
        for node in ast.walk(module.tree):
            targets: list[tuple[ast.AST, str]] = []
            if isinstance(node, ast.Import):
                targets = [(node, alias.name) for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                target = self._absolute_target(module, node)
                if target is None:
                    continue
                targets = [(node, target)]
                yield from self._check_private_imports(module, node, target)
            for ref, target in targets:
                yield from self._check_layering(
                    module, ref, target, source_rank, layers
                )

    # -- RPL401 --------------------------------------------------------

    def _check_all_declaration(self, module: SourceModule) -> Iterator[Finding]:
        if module.module is None:
            return
        stem = module.module.rsplit(".", 1)[-1]
        if stem.startswith("_") and stem != "__init__":
            return
        for stmt in module.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in stmt.targets
                )
            ) or (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__all__"
            ):
                return
        yield Finding(
            module.rel,
            1,
            1,
            "RPL401",
            self.name,
            f"public module `{module.module}` does not declare __all__; "
            "the export surface must be explicit",
        )

    # -- RPL402 --------------------------------------------------------

    @staticmethod
    def _rank(module: str | None, layers: list[list[str]]) -> int | None:
        if module is None:
            return None
        best: tuple[int, int] | None = None  # (prefix length, rank)
        for rank, group in enumerate(layers):
            for prefix in group:
                if module == prefix or module.startswith(prefix + "."):
                    if best is None or len(prefix) > best[0]:
                        best = (len(prefix), rank)
        return None if best is None else best[1]

    def _check_layering(
        self,
        module: SourceModule,
        node: ast.AST,
        target: str,
        source_rank: int | None,
        layers: list[list[str]],
    ) -> Iterator[Finding]:
        if source_rank is None:
            return
        target_rank = self._rank(target, layers)
        if target_rank is None or target_rank <= source_rank:
            return
        yield Finding(
            module.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            "RPL402",
            self.name,
            f"`{module.module}` (layer {source_rank}) imports `{target}` "
            f"(layer {target_rank}): the dependency points up the layer "
            "order; move the shared code down or invert the dependency",
        )

    # -- RPL403 --------------------------------------------------------

    def _check_private_imports(
        self, module: SourceModule, node: ast.ImportFrom, target: str
    ) -> Iterator[Finding]:
        if module.module is None:
            return
        source_pkg = ".".join(module.module.split(".")[:2])
        target_pkg = ".".join(target.split(".")[:2])
        if source_pkg == target_pkg:
            return
        for alias in node.names:
            if alias.name.startswith("_") and not alias.name.startswith("__"):
                yield Finding(
                    module.rel,
                    node.lineno,
                    node.col_offset + 1,
                    "RPL403",
                    self.name,
                    f"`{alias.name}` is private to `{target}`; import a "
                    "public name or promote the helper to the public "
                    "surface of a lower layer",
                )

    def _absolute_target(
        self, module: SourceModule, node: ast.ImportFrom
    ) -> str | None:
        if node.level == 0:
            return node.module
        if module.module is None:
            return None
        parts = module.module.split(".")
        # module_name_for() names a package by its bare dotted path, so
        # level 1 drops nothing for a package __init__ and one component
        # for a plain module; each further level drops one more.
        drop = node.level - 1 if module.path.name == "__init__.py" else node.level
        base = parts[: len(parts) - drop] if drop else parts
        if node.module:
            base = [*base, node.module]
        return ".".join(base) if base else None
