"""replint pass ``service-hygiene``: the serving tier fails loudly.

The service's robustness story rests on three disciplines that decay
silently without a machine check:

* **every network/queue await is bounded** — an unbounded
  ``await reader.readline()`` or ``await queue.get()`` is a handler a
  slow or dead peer can wedge forever, which turns one bad client into
  a server-wide outage; every such await must run under an explicit
  timeout (``asyncio.wait_for(...)`` or an ``async with
  asyncio.timeout(...)`` block);
* **every failure maps to a protocol response** — a bare ``except:`` or
  a swallow-and-continue handler converts a failure the client must see
  (an explicit error code, a shed, a degraded answer) into a silent
  wrong behaviour, the one outcome the chaos suite exists to forbid;
* **the supervisor owns every worker process** — a raw ``os.fork()``,
  ``multiprocessing.Process(...)`` or ``subprocess.Popen(...)`` anywhere
  else in the serving tier creates a process with no sentinel watcher,
  no respawn-on-crash, no checkpoint re-homing and no teardown reaping:
  an orphan the resilience machinery cannot see.

Codes:

* ``RPL601`` — an ``await`` directly on a blocking network/queue method
  with no timeout wrapper.
* ``RPL602`` — a bare ``except:`` clause; name the failures you handle.
* ``RPL603`` — an exception handler whose whole body is ``pass`` (or
  ``...``): the failure is swallowed with no response, log, or metric.
* ``RPL604`` — a raw process spawn outside the supervisor module
  (``spawn-modules`` option, default ``repro.service.supervisor``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from typing import Any

from repro.analysis.engine import Finding, Pass, SourceModule, register

__all__ = ["ServiceHygienePass"]

#: Awaited attribute calls that block on a peer, a queue, or a socket.
_RISKY_METHODS = [
    "accept",
    "connect",
    "drain",
    "get",
    "join",
    "put",
    "read",
    "readexactly",
    "readline",
    "readuntil",
    "recv",
    "sendall",
    "wait_closed",
]

#: Callables that bound an await with an explicit timeout.
_TIMEOUT_WRAPPERS = ["asyncio.wait_for"]

#: Async context managers that bound every await inside their block.
_TIMEOUT_SCOPES = ["asyncio.timeout", "asyncio.timeout_at"]

#: Callables that create a process the supervisor would not be watching.
_SPAWN_CALLS = [
    "multiprocessing.Process",
    "os.fork",
    "os.forkpty",
    "os.posix_spawn",
    "os.posix_spawnp",
    "subprocess.Popen",
]

#: Modules allowed to spawn: the supervisor, which pairs every spawn
#: with a sentinel watcher, respawn backoff, and teardown reaping.
_SPAWN_MODULES = ["repro.service.supervisor"]


@register
class ServiceHygienePass(Pass):
    """Bounded awaits and explicit failure mapping in the serving tier."""

    name = "service-hygiene"
    codes = {
        "RPL601": "network/queue await without an explicit timeout",
        "RPL602": "bare except in a request/ingest path",
        "RPL603": "exception handler swallows the failure silently",
        "RPL604": "raw process spawn outside the supervisor",
    }
    default_options: dict[str, Any] = {
        "packages": ["repro.service"],
        "risky-methods": list(_RISKY_METHODS),
        "timeout-wrappers": list(_TIMEOUT_WRAPPERS),
        "timeout-scopes": list(_TIMEOUT_SCOPES),
        "spawn-calls": list(_SPAWN_CALLS),
        "spawn-modules": list(_SPAWN_MODULES),
    }

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        risky = frozenset(str(m) for m in options.get("risky-methods", ()))
        scopes = frozenset(str(s) for s in options.get("timeout-scopes", ()))
        spawns = frozenset(str(c) for c in options.get("spawn-calls", ()))
        spawn_modules = frozenset(
            str(m) for m in options.get("spawn-modules", ())
        )
        may_spawn = module.module in spawn_modules
        bounded = self._timeout_scope_spans(module, scopes)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Await):
                yield from self._check_await(module, node, risky, bounded)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)
            elif isinstance(node, ast.Call) and not may_spawn:
                yield from self._check_spawn(module, node, spawns)

    # -- RPL601 --------------------------------------------------------

    def _timeout_scope_spans(
        self, module: SourceModule, scopes: frozenset[str]
    ) -> list[tuple[int, int]]:
        """Line spans of ``async with asyncio.timeout(...)`` blocks."""
        spans: list[tuple[int, int]] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncWith):
                continue
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Call)
                    and module.resolve(expr.func) in scopes
                ):
                    spans.append((node.lineno, node.end_lineno or node.lineno))
                    break
        return spans

    def _check_await(
        self,
        module: SourceModule,
        node: ast.Await,
        risky: frozenset[str],
        bounded: list[tuple[int, int]],
    ) -> Iterator[Finding]:
        call = node.value
        if not isinstance(call, ast.Call):
            return
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in risky:
            return
        if any(start <= node.lineno <= end for start, end in bounded):
            return
        yield Finding(
            module.rel,
            node.lineno,
            node.col_offset + 1,
            "RPL601",
            self.name,
            f"`await ...{func.attr}()` has no timeout: a dead peer or a "
            "stuck queue wedges this handler forever; wrap it in "
            "asyncio.wait_for(..., timeout=...) or an "
            "`async with asyncio.timeout(...)` block",
        )

    # -- RPL604 --------------------------------------------------------

    def _check_spawn(
        self,
        module: SourceModule,
        node: ast.Call,
        spawns: frozenset[str],
    ) -> Iterator[Finding]:
        resolved = module.resolve(node.func)
        name = resolved
        if resolved is None or resolved not in spawns:
            # A context-bound `ctx.Process(...)` (or any other `.Process`
            # constructor reached through a local object) resolves to no
            # dotted import name, but still creates an unwatched process.
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr == "Process"
            ):
                return
            name = f"...{func.attr}"
        yield Finding(
            module.rel,
            node.lineno,
            node.col_offset + 1,
            "RPL604",
            self.name,
            f"`{name}(...)` spawns a process the supervisor is not "
            "watching: no sentinel watcher, no respawn-on-crash, no "
            "checkpoint re-homing, no teardown reap; create workers "
            "through repro.service.supervisor instead",
        )

    # -- RPL602 / RPL603 ----------------------------------------------

    def _check_handler(
        self, module: SourceModule, node: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if node.type is None:
            yield Finding(
                module.rel,
                node.lineno,
                node.col_offset + 1,
                "RPL602",
                self.name,
                "bare `except:` catches SystemExit/KeyboardInterrupt and "
                "hides unknown failures from the client; name the "
                "exception types this path actually handles",
            )
        if all(self._is_silent(stmt) for stmt in node.body):
            yield Finding(
                module.rel,
                node.lineno,
                node.col_offset + 1,
                "RPL603",
                self.name,
                "exception handler swallows the failure silently; map it "
                "to a protocol error response, a metric, or re-raise",
            )

    @staticmethod
    def _is_silent(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Pass):
            return True
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
