"""replint: invariant-aware static analysis for this reproduction.

The paper's guarantees rest on invariants Python cannot enforce at
runtime — seeded replayable randomness (Section 4.5), plain-data
process boundaries (Section 6), honest float/NaN rank accounting, and a
one-way layer graph.  This package machine-checks them:

>>> from pathlib import Path
>>> from repro.analysis import analyze_paths, load_config
>>> report = analyze_paths([Path("src/repro")], load_config())
>>> report.exit_code
0

Command line::

    python -m repro.analysis src tests benchmarks examples
    python -m repro.analysis --json src
    repro analyze src            # same engine via the main CLI

Passes (see each module's docstring for codes and rationale):

* ``determinism`` — no global/unseeded RNG, no wall-clock entropy.
* ``spawn-safety`` — plain data only across process boundaries.
* ``float-discipline`` — no float equality; central NaN gate.
* ``api-hygiene`` — declared ``__all__``; imports flow down layers.
* ``buffer-arena`` — resident elements live in the columnar arena.
* ``service-hygiene`` — serving-tier awaits are bounded by timeouts;
  handler failures map to protocol responses, never silence.

Per-pass configuration lives in ``[tool.replint]`` in pyproject.toml;
line-level escapes are ``# replint: disable=<pass> -- <justification>``
(the justification is mandatory).
"""

from __future__ import annotations

from repro.analysis.engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    Config,
    Finding,
    Pass,
    Report,
    SourceModule,
    analyze_paths,
    iter_source_files,
    load_config,
    module_name_for,
    register,
    registered_passes,
)

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "Config",
    "Finding",
    "Pass",
    "Report",
    "SourceModule",
    "analyze_paths",
    "iter_source_files",
    "load_config",
    "main",
    "module_name_for",
    "register",
    "registered_passes",
]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (defers to :mod:`repro.analysis.__main__`)."""
    from repro.analysis.__main__ import main as _main

    return _main(argv)
