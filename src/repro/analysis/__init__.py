"""replint: invariant-aware static analysis for this reproduction.

The paper's guarantees rest on invariants Python cannot enforce at
runtime — seeded replayable randomness (Section 4.5), plain-data
process boundaries (Section 6), honest float/NaN rank accounting, and a
one-way layer graph.  This package machine-checks them:

>>> from pathlib import Path
>>> from repro.analysis import analyze_paths, load_config
>>> report = analyze_paths([Path("src/repro")], load_config())
>>> report.exit_code
0

Command line::

    python -m repro.analysis src tests benchmarks examples
    python -m repro.analysis --format sarif src > replint.sarif
    python -m repro.analysis --baseline replint-baseline.json src
    repro analyze src            # same engine via the main CLI

Passes (see each module's docstring for codes and rationale):

* ``determinism`` — no global/unseeded RNG, no wall-clock entropy.
* ``spawn-safety`` — plain data only across process boundaries.
* ``float-discipline`` — no float equality; central NaN gate.
* ``api-hygiene`` — declared ``__all__``; imports flow down layers.
* ``buffer-arena`` — resident elements live in the columnar arena.
* ``service-hygiene`` — serving-tier awaits are bounded by timeouts;
  handler failures map to protocol responses, never silence.
* ``rng-flow`` — (dataflow) accepted seeds actually reach the RNGs a
  function constructs; cross-module calls thread seeds through.
* ``resource-lifecycle`` — (typestate) acquired segments, handles and
  pools are released on every exit path.
* ``api-reachability`` — (whole-program) every export is referenced;
  ``__all__`` and module bodies agree.
* ``native-c`` — (C audit) refcount discipline on error paths, format
  string arity, NULL checks, buffer acquire/release pairing in
  ``_native.c``.

Whole-program passes receive a :class:`~repro.analysis.project.ProjectGraph`
— one parse of the repo exposing imports, exports and cross-module
references — via the optional :meth:`Pass.project_check` hook.

Per-pass configuration lives in ``[tool.replint]`` in pyproject.toml;
line-level escapes are ``# replint: disable=<pass> -- <justification>``
(the justification is mandatory).  ``--baseline`` / ``--write-baseline``
adopt the gate on a tree with known findings, failing only on
regressions; ``--format sarif`` emits SARIF 2.1.0 for code-scanning UIs.
"""

from __future__ import annotations

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    SEVERITIES,
    Config,
    Finding,
    Pass,
    Report,
    SourceModule,
    analyze_paths,
    iter_source_files,
    load_config,
    module_name_for,
    register,
    registered_passes,
)
from repro.analysis.project import CallableInfo, ProjectGraph
from repro.analysis.sarif import render_sarif, to_sarif

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "SEVERITIES",
    "CallableInfo",
    "Config",
    "Finding",
    "Pass",
    "ProjectGraph",
    "Report",
    "SourceModule",
    "analyze_paths",
    "apply_baseline",
    "iter_source_files",
    "load_baseline",
    "load_config",
    "main",
    "module_name_for",
    "register",
    "registered_passes",
    "render_sarif",
    "to_sarif",
    "write_baseline",
]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (defers to :mod:`repro.analysis.__main__`)."""
    from repro.analysis.__main__ import main as _main

    return _main(argv)
