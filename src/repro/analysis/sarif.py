"""SARIF 2.1.0 rendering of a replint :class:`~repro.analysis.engine.Report`.

SARIF (Static Analysis Results Interchange Format, OASIS) is the wire
format GitHub code scanning ingests: upload the file from CI and every
finding becomes an inline PR annotation with the rule's description
attached.  The emitter here targets the minimal valid subset — one run,
one driver, one rule per finding code, one physical location per result
— because consumers ignore what they do not know and validators reject
what is malformed, so less is safer.

Severity mapping: replint severities are already SARIF levels
(``error`` / ``warning`` / ``note``), so the mapping is the identity.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.engine import Pass, Report

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: ``informationUri`` of the driver: where a reader of an annotation
#: finds the rule rationale (docs/ANALYSIS.md in this repo).
_INFO_URI = "https://github.com/mrl99-repro/repro/blob/main/docs/ANALYSIS.md"


def to_sarif(report: Report, passes: dict[str, Pass]) -> dict[str, Any]:
    """The SARIF 2.1.0 log object for one report.

    ``passes`` supplies the rule metadata (code -> summary); codes that
    appear in findings but belong to no registered pass (the framework's
    RPL00x codes) still get a rule entry so every result's ``ruleId``
    resolves.
    """
    summaries: dict[str, str] = {
        "RPL001": "malformed or unjustified replint suppression",
        "RPL002": "suppression names an unknown pass",
        "RPL003": "file does not parse",
    }
    for instance in passes.values():
        summaries.update(instance.codes)
    used_codes = sorted({finding.code for finding in report.findings})
    rule_index = {code: index for index, code in enumerate(used_codes)}
    rules = [
        {
            "id": code,
            "name": code,
            "shortDescription": {
                "text": summaries.get(code, "replint finding"),
            },
            "helpUri": _INFO_URI,
            "defaultConfiguration": {"level": "error"},
        }
        for code in used_codes
    ]
    results = [
        {
            "ruleId": finding.code,
            "ruleIndex": rule_index[finding.code],
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "replintFingerprint/v1": finding.fingerprint(),
            },
        }
        for finding in report.findings
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "replint",
                        "informationUri": _INFO_URI,
                        "version": "2.0.0",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {
                        "description": {
                            "text": "repository root the analysis ran from"
                        }
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def render_sarif(report: Report, passes: dict[str, Pass]) -> str:
    """:func:`to_sarif`, serialised with stable key order."""
    return json.dumps(to_sarif(report, passes), indent=2, sort_keys=True)
