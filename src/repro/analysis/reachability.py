"""replint pass ``api-reachability``: exported names must earn their keep.

``__all__`` is this repo's public-API contract: the api-hygiene pass
polices *how* modules reach each other, this pass polices *what they
reach for*.  Over the :class:`~repro.analysis.project.ProjectGraph` it
counts references to every exported name — through package re-export
chains (``repro.core.X`` addressing ``repro.core.parallel.X``) — and
flags exports nothing uses, plus both directions of ``__all__`` drift.

Codes:

* ``RPL451`` — (whole-program, warning) a name a module exports is
  referenced by no other scanned file.  Because "no other file" is only
  meaningful when the usage side of the repo was actually scanned, this
  check engages only when the run includes every configured
  ``usage-root`` (tests/benchmarks/examples by default); a src-only run
  skips it rather than report unsound deadness.  Re-export chains
  shield inner modules: a name used only via ``repro.core.X`` still
  counts as a reference to ``repro.core.parallel.X``.
* ``RPL452`` — ``__all__`` lists a name the module never binds at top
  level: ``from module import *`` raises ``AttributeError`` at import
  time, and tooling that trusts ``__all__`` lies to its users.
* ``RPL453`` — a public (non-underscore) top-level ``def``/``class``
  in a module that *has* an ``__all__`` but omits the name: the symbol
  is importable yet invisible to ``*``-imports and API docs — either
  export it or underscore it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from typing import Any

from repro.analysis.engine import Finding, Pass, SourceModule, register
from repro.analysis.project import ProjectGraph

__all__ = ["ApiReachabilityPass"]


@register
class ApiReachabilityPass(Pass):
    """Every export referenced; ``__all__`` and the module agree."""

    name = "api-reachability"
    codes = {
        "RPL451": "exported name is never referenced by another module",
        "RPL452": "__all__ lists a name the module does not define",
        "RPL453": "public definition missing from __all__",
    }
    default_options: dict[str, Any] = {
        "packages": ["repro"],
        # RPL451 is only sound when the consumers were scanned too; it
        # engages only when the run covers every one of these roots.
        "usage-roots": ["tests", "benchmarks", "examples"],
    }

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        return iter(())

    def project_check(
        self, graph: ProjectGraph, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        packages = list(options.get("packages", ()))
        check_dead = self._usage_roots_scanned(graph, options)
        for name, module in sorted(graph.modules.items()):
            if packages and not module.in_packages(packages):
                continue
            exports = graph.exports.get(name, [])
            defined = graph.defined.get(name, set())
            yield from self._check_drift(module, name, exports, defined)
            if check_dead:
                yield from self._check_dead_exports(graph, module, name, exports)

    def _usage_roots_scanned(
        self, graph: ProjectGraph, options: Mapping[str, Any]
    ) -> bool:
        roots = list(options.get("usage-roots", ()))
        if not roots:
            return True
        scanned = list(graph.by_path)
        return all(
            any(rel == root or rel.startswith(root + "/") for rel in scanned)
            for root in roots
        )

    # -- RPL452 / RPL453: __all__ drift --------------------------------

    def _check_drift(
        self,
        module: SourceModule,
        name: str,
        exports: list[tuple[str, int]],
        defined: set[str],
    ) -> Iterator[Finding]:
        for export, line in exports:
            if export not in defined:
                yield self._finding(
                    module,
                    line,
                    "RPL452",
                    f"__all__ lists `{export}` but `{name}` never binds "
                    "it at top level; `import *` and API tooling will "
                    "fail on a name that does not exist",
                )
        if not exports:
            return
        exported = {export for export, _ in exports}
        for stmt in module.tree.body:
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if stmt.name.startswith("_") or stmt.name in exported:
                continue
            yield self._finding(
                module,
                stmt.lineno,
                "RPL453",
                f"public `{stmt.name}` is missing from __all__; export "
                "it or rename it with a leading underscore so the API "
                "surface stays explicit",
            )

    # -- RPL451: dead exports ------------------------------------------

    def _check_dead_exports(
        self,
        graph: ProjectGraph,
        module: SourceModule,
        name: str,
        exports: list[tuple[str, int]],
    ) -> Iterator[Finding]:
        for export, line in exports:
            if export.startswith("_"):
                continue
            if self._export_referenced(graph, name, export):
                continue
            yield self._finding(
                module,
                line,
                "RPL451",
                f"exported `{export}` is referenced by no other scanned "
                "module (src, tests, benchmarks, examples); remove it "
                "from __all__ or add the missing consumer/test",
                severity="warning",
            )

    def _export_referenced(
        self, graph: ProjectGraph, module: str, export: str
    ) -> bool:
        """Any *other* file references this export's defining address."""
        address = graph.resolve_address(f"{module}.{export}")
        for rel in graph.references_to(address):
            owner = graph.by_path.get(rel)
            if owner is None or owner.module != module:
                return True
        return False

    def _finding(
        self,
        module: SourceModule,
        line: int,
        code: str,
        message: str,
        severity: str = "error",
    ) -> Finding:
        return Finding(
            module.rel, line, 1, code, self.name, message, severity=severity
        )
