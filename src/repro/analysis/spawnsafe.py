"""replint pass ``spawn-safety``: plain data only across process lines.

The Section 6 parallel protocol ships "at most one full buffer and one
partial buffer" per processor — a bound :mod:`repro.runtime` preserves
by sending only primitive specs in and CRC-framed snapshot bytes out.
Pickling a live estimator (or capturing one in a worker closure) would
silently break that bound, tie the wire format to object internals, and
behave differently under ``fork`` (shared pages) and ``spawn`` (fresh
interpreters).  This pass keeps the boundary honest:

* ``RPL201`` — a process ``target=`` that is not a module-level
  function (lambda, bound method, nested function): closures smuggle
  whole object graphs across the boundary under ``fork`` and fail
  outright under ``spawn``.
* ``RPL202`` — module-level multiprocessing side effect
  (``Process(...)``, ``Pool(...)``, ``set_start_method(...)``) outside
  an ``if __name__ == "__main__"`` guard: under ``spawn`` the child
  re-imports the module and forks the fork bomb.  Checked in *every*
  scanned file (scripts included), not just the configured packages.
* ``RPL203`` — a payload dataclass (name ending in one of
  ``payload-suffixes``, e.g. ``WorkerSpec``) with a field annotation
  that is not plain data: payloads must survive pickling into a fresh
  interpreter that has imported nothing but the payload's module.
* ``RPL204`` — a process ``args=`` tuple containing a call or lambda:
  arguments must be pre-built plain data, not objects constructed
  inline on the parent side of the boundary.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from typing import Any

from repro.analysis.engine import Finding, Pass, SourceModule, register

__all__ = ["SpawnSafetyPass"]

#: Dotted-name tails that construct a process/pool when called.
_PROCESS_TAILS = {"Process", "Pool", "ProcessPoolExecutor"}

#: Module-level calls that are multiprocessing side effects.
_SIDE_EFFECT_TAILS = _PROCESS_TAILS | {"set_start_method"}

#: Annotation base names considered plain, picklable-by-value data.
_PLAIN_TYPE_NAMES = {
    "int",
    "float",
    "str",
    "bytes",
    "bool",
    "None",
    "dict",
    "list",
    "tuple",
    "set",
    "frozenset",
    "object",
    "Optional",
    "Union",
    "Sequence",
    "Mapping",
    "Iterable",
    "Any",
}


@register
class SpawnSafetyPass(Pass):
    """Process boundaries carry plain data shipped by plain functions."""

    name = "spawn-safety"
    codes = {
        "RPL201": "process target is not a module-level function",
        "RPL202": "module-level multiprocessing side effect without __main__ guard",
        "RPL203": "cross-process payload field is not plain data",
        "RPL204": "process args built inline instead of pre-built plain data",
    }
    default_options: dict[str, Any] = {
        "packages": ["repro.runtime", "repro.cluster"],
        "payload-suffixes": ["Spec", "Shipment", "Payload"],
    }

    def applies_to(self, module: SourceModule, options: Mapping[str, Any]) -> bool:
        # RPL202 (the __main__ guard) is a property of *scripts*, so the
        # pass visits every file; the payload/target checks additionally
        # scope themselves to the configured packages in check().
        return True

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        yield from self._check_module_level_side_effects(module)
        if not super().applies_to(module, options):
            return
        toplevel_functions = {
            stmt.name
            for stmt in module.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        suffixes = tuple(options.get("payload-suffixes", ()))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_process_call(module, node, toplevel_functions)
            elif isinstance(node, ast.ClassDef) and node.name.endswith(suffixes):
                yield from self._check_payload_class(module, node)

    # -- RPL202: guarded module scope ----------------------------------

    def _check_module_level_side_effects(
        self, module: SourceModule
    ) -> Iterator[Finding]:
        for stmt in self._unguarded_statements(module.tree.body):
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                dotted = module.resolve(node.func)
                if dotted is None:
                    continue
                tail = dotted.rsplit(".", 1)[-1]
                if tail in _SIDE_EFFECT_TAILS and self._is_mp_origin(dotted):
                    yield self._finding(
                        module,
                        node,
                        "RPL202",
                        f"`{dotted}(...)` at module level runs again in "
                        "every spawned child when the module is "
                        're-imported; move it under `if __name__ == '
                        '"__main__"`',
                    )

    def _unguarded_statements(self, body: list[ast.stmt]) -> Iterator[ast.stmt]:
        """Top-level statements reachable on a bare import of the module."""
        for stmt in body:
            if isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(stmt, ast.If) and self._is_main_guard(stmt.test):
                continue
            yield stmt

    @staticmethod
    def _is_main_guard(test: ast.expr) -> bool:
        return (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value == "__main__"
        )

    @staticmethod
    def _is_mp_origin(dotted: str) -> bool:
        head = dotted.split(".", 1)[0]
        return head in {"multiprocessing", "mp", "concurrent"} or dotted in (
            _SIDE_EFFECT_TAILS
        )

    # -- RPL201 / RPL204: process construction sites -------------------

    def _check_process_call(
        self,
        module: SourceModule,
        node: ast.Call,
        toplevel_functions: set[str],
    ) -> Iterator[Finding]:
        dotted = module.resolve(node.func)
        if dotted is None or dotted.rsplit(".", 1)[-1] not in _PROCESS_TAILS:
            return
        for keyword in node.keywords:
            if keyword.arg == "target":
                yield from self._check_target(
                    module, keyword.value, toplevel_functions
                )
            elif keyword.arg == "args":
                yield from self._check_args(module, keyword.value)

    def _check_target(
        self,
        module: SourceModule,
        target: ast.expr,
        toplevel_functions: set[str],
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Lambda):
            yield self._finding(
                module,
                target,
                "RPL201",
                "a lambda target cannot be pickled under the spawn start "
                "method; use a module-level function",
            )
        elif isinstance(target, ast.Attribute):
            yield self._finding(
                module,
                target,
                "RPL201",
                "a bound-method target drags its whole `self` across the "
                "process boundary; use a module-level function taking "
                "plain data",
            )
        elif isinstance(target, ast.Name) and target.id not in toplevel_functions:
            yield self._finding(
                module,
                target,
                "RPL201",
                f"target `{target.id}` is not a module-level function in "
                "this module; nested functions close over parent state "
                "and fail under spawn",
            )

    def _check_args(self, module: SourceModule, args: ast.expr) -> Iterator[Finding]:
        elements = args.elts if isinstance(args, (ast.Tuple, ast.List)) else []
        for element in elements:
            if isinstance(element, (ast.Call, ast.Lambda)):
                yield self._finding(
                    module,
                    element,
                    "RPL204",
                    "process args must be pre-built plain data; "
                    "constructing objects inline here hides what "
                    "actually crosses the process boundary",
                )

    # -- RPL203: payload field discipline ------------------------------

    def _check_payload_class(
        self, module: SourceModule, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            bad = self._non_plain_parts(stmt.annotation)
            if bad:
                target = (
                    stmt.target.id
                    if isinstance(stmt.target, ast.Name)
                    else ast.unparse(stmt.target)
                )
                yield self._finding(
                    module,
                    stmt,
                    "RPL203",
                    f"payload field `{node.name}.{target}` is annotated "
                    f"with non-plain type(s) {', '.join(sorted(bad))}; "
                    "cross-process payloads must be primitives the "
                    "far side can unpickle without importing engines",
                )

    def _non_plain_parts(self, annotation: ast.expr) -> set[str]:
        """Names in an annotation tree that are not plain-data types."""
        bad: set[str] = set()
        self._collect_non_plain(annotation, bad)
        return bad

    def _collect_non_plain(self, node: ast.expr, bad: set[str]) -> None:
        if isinstance(node, ast.Name):
            if node.id not in _PLAIN_TYPE_NAMES:
                bad.add(node.id)
        elif isinstance(node, ast.Attribute):
            # A dotted type (`repro.core.UnknownNQuantiles`) is judged as
            # a whole; its inner Name is not visited separately.
            bad.add(ast.unparse(node))
        elif isinstance(node, ast.Constant):
            pass  # None / string forward references carry no class
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._collect_non_plain(child, bad)

    def _finding(
        self, module: SourceModule, node: ast.AST, code: str, message: str
    ) -> Finding:
        return Finding(
            module.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            code,
            self.name,
            message,
        )
