"""replint pass ``spawn-safety``: plain data only across process lines.

The Section 6 parallel protocol ships "at most one full buffer and one
partial buffer" per processor — a bound :mod:`repro.runtime` preserves
by sending only primitive specs in and CRC-framed snapshot bytes out.
Pickling a live estimator (or capturing one in a worker closure) would
silently break that bound, tie the wire format to object internals, and
behave differently under ``fork`` (shared pages) and ``spawn`` (fresh
interpreters).  This pass keeps the boundary honest:

* ``RPL201`` — a process ``target=`` that is not a module-level
  function (lambda, bound method, nested function): closures smuggle
  whole object graphs across the boundary under ``fork`` and fail
  outright under ``spawn``.
* ``RPL202`` — module-level multiprocessing side effect
  (``Process(...)``, ``Pool(...)``, ``set_start_method(...)``) outside
  an ``if __name__ == "__main__"`` guard: under ``spawn`` the child
  re-imports the module and forks the fork bomb.  Checked in *every*
  scanned file (scripts included), not just the configured packages.
* ``RPL203`` — a payload dataclass (name ending in one of
  ``payload-suffixes``, e.g. ``WorkerSpec``) with a field annotation
  that is not plain data: payloads must survive pickling into a fresh
  interpreter that has imported nothing but the payload's module.
* ``RPL204`` — a process ``args=`` tuple containing a call or lambda:
  arguments must be pre-built plain data, not objects constructed
  inline on the parent side of the boundary.
* ``RPL205`` — a shared-memory acquisition (``ArenaSegment.create`` /
  ``ArenaSegment.attach``) with no visible release on exit paths: the
  call must be a ``with`` item, sit in a function with a ``try`` whose
  ``finally`` calls ``close``/``unlink``/``destroy``, or be stored on
  ``self`` in a class that defines a teardown method.  A mapping with
  no release path outlives its process as a ``/dev/shm`` leak.
* ``RPL206`` — raw ``SharedMemory`` calls or segment-name prefix
  literals outside the sanctioned shm module (``shm-module`` option):
  names are minted in exactly one place so a leak scan of ``/dev/shm``
  is conclusive and lifecycle hygiene cannot be bypassed.  Checked in
  *every* scanned file, like ``RPL202``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from typing import Any

from repro.analysis.engine import Finding, Pass, SourceModule, register

__all__ = ["SpawnSafetyPass"]

#: Dotted-name tails that construct a process/pool when called.
_PROCESS_TAILS = {"Process", "Pool", "ProcessPoolExecutor"}

#: Module-level calls that are multiprocessing side effects.
_SIDE_EFFECT_TAILS = _PROCESS_TAILS | {"set_start_method"}

#: Annotation base names considered plain, picklable-by-value data.
_PLAIN_TYPE_NAMES = {
    "int",
    "float",
    "str",
    "bytes",
    "bool",
    "None",
    "dict",
    "list",
    "tuple",
    "set",
    "frozenset",
    "object",
    "Optional",
    "Union",
    "Sequence",
    "Mapping",
    "Iterable",
    "Any",
}

#: Call tails (last two dotted parts) that map a shared-memory segment.
_SHM_ACQUIRE_TAILS = {"ArenaSegment.create", "ArenaSegment.attach"}

#: Attribute-call names that release a mapping or remove a name.
_SHM_RELEASE_ATTRS = {"close", "unlink", "destroy"}

#: Methods whose presence marks a class as owning segment teardown.
_SHM_TEARDOWN_METHODS = {"close", "destroy", "__exit__", "__del__"}


@register
class SpawnSafetyPass(Pass):
    """Process boundaries carry plain data shipped by plain functions."""

    name = "spawn-safety"
    codes = {
        "RPL201": "process target is not a module-level function",
        "RPL202": "module-level multiprocessing side effect without __main__ guard",
        "RPL203": "cross-process payload field is not plain data",
        "RPL204": "process args built inline instead of pre-built plain data",
        "RPL205": "shared-memory segment acquired without a release path",
        "RPL206": "shared-memory name or raw SharedMemory outside the shm module",
    }
    default_options: dict[str, Any] = {
        "packages": ["repro.runtime", "repro.cluster"],
        "payload-suffixes": ["Spec", "Shipment", "Payload"],
        "shm-module": "repro.runtime.shm",
        # replint: disable=spawn-safety -- the rule's own default value
        "shm-name-prefix": "repro-arena-",
    }

    def applies_to(self, module: SourceModule, options: Mapping[str, Any]) -> bool:
        # RPL202 (the __main__ guard) is a property of *scripts*, so the
        # pass visits every file; the payload/target checks additionally
        # scope themselves to the configured packages in check().
        return True

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        yield from self._check_module_level_side_effects(module)
        yield from self._check_shm(module, options)
        if not super().applies_to(module, options):
            return
        toplevel_functions = {
            stmt.name
            for stmt in module.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        suffixes = tuple(options.get("payload-suffixes", ()))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_process_call(module, node, toplevel_functions)
            elif isinstance(node, ast.ClassDef) and node.name.endswith(suffixes):
                yield from self._check_payload_class(module, node)

    # -- RPL202: guarded module scope ----------------------------------

    def _check_module_level_side_effects(
        self, module: SourceModule
    ) -> Iterator[Finding]:
        for stmt in self._unguarded_statements(module.tree.body):
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                dotted = module.resolve(node.func)
                if dotted is None:
                    continue
                tail = dotted.rsplit(".", 1)[-1]
                if tail in _SIDE_EFFECT_TAILS and self._is_mp_origin(dotted):
                    yield self._finding(
                        module,
                        node,
                        "RPL202",
                        f"`{dotted}(...)` at module level runs again in "
                        "every spawned child when the module is "
                        're-imported; move it under `if __name__ == '
                        '"__main__"`',
                    )

    def _unguarded_statements(self, body: list[ast.stmt]) -> Iterator[ast.stmt]:
        """Top-level statements reachable on a bare import of the module."""
        for stmt in body:
            if isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(stmt, ast.If) and self._is_main_guard(stmt.test):
                continue
            yield stmt

    @staticmethod
    def _is_main_guard(test: ast.expr) -> bool:
        return (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == "__name__"
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value == "__main__"
        )

    @staticmethod
    def _is_mp_origin(dotted: str) -> bool:
        head = dotted.split(".", 1)[0]
        return head in {"multiprocessing", "mp", "concurrent"} or dotted in (
            _SIDE_EFFECT_TAILS
        )

    # -- RPL201 / RPL204: process construction sites -------------------

    def _check_process_call(
        self,
        module: SourceModule,
        node: ast.Call,
        toplevel_functions: set[str],
    ) -> Iterator[Finding]:
        dotted = module.resolve(node.func)
        if dotted is None or dotted.rsplit(".", 1)[-1] not in _PROCESS_TAILS:
            return
        for keyword in node.keywords:
            if keyword.arg == "target":
                yield from self._check_target(
                    module, keyword.value, toplevel_functions
                )
            elif keyword.arg == "args":
                yield from self._check_args(module, keyword.value)

    def _check_target(
        self,
        module: SourceModule,
        target: ast.expr,
        toplevel_functions: set[str],
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Lambda):
            yield self._finding(
                module,
                target,
                "RPL201",
                "a lambda target cannot be pickled under the spawn start "
                "method; use a module-level function",
            )
        elif isinstance(target, ast.Attribute):
            yield self._finding(
                module,
                target,
                "RPL201",
                "a bound-method target drags its whole `self` across the "
                "process boundary; use a module-level function taking "
                "plain data",
            )
        elif isinstance(target, ast.Name) and target.id not in toplevel_functions:
            yield self._finding(
                module,
                target,
                "RPL201",
                f"target `{target.id}` is not a module-level function in "
                "this module; nested functions close over parent state "
                "and fail under spawn",
            )

    def _check_args(self, module: SourceModule, args: ast.expr) -> Iterator[Finding]:
        elements = args.elts if isinstance(args, (ast.Tuple, ast.List)) else []
        for element in elements:
            if isinstance(element, (ast.Call, ast.Lambda)):
                yield self._finding(
                    module,
                    element,
                    "RPL204",
                    "process args must be pre-built plain data; "
                    "constructing objects inline here hides what "
                    "actually crosses the process boundary",
                )

    # -- RPL203: payload field discipline ------------------------------

    def _check_payload_class(
        self, module: SourceModule, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            bad = self._non_plain_parts(stmt.annotation)
            if bad:
                target = (
                    stmt.target.id
                    if isinstance(stmt.target, ast.Name)
                    else ast.unparse(stmt.target)
                )
                yield self._finding(
                    module,
                    stmt,
                    "RPL203",
                    f"payload field `{node.name}.{target}` is annotated "
                    f"with non-plain type(s) {', '.join(sorted(bad))}; "
                    "cross-process payloads must be primitives the "
                    "far side can unpickle without importing engines",
                )

    def _non_plain_parts(self, annotation: ast.expr) -> set[str]:
        """Names in an annotation tree that are not plain-data types."""
        bad: set[str] = set()
        self._collect_non_plain(annotation, bad)
        return bad

    def _collect_non_plain(self, node: ast.expr, bad: set[str]) -> None:
        if isinstance(node, ast.Name):
            if node.id not in _PLAIN_TYPE_NAMES:
                bad.add(node.id)
        elif isinstance(node, ast.Attribute):
            # A dotted type (`repro.core.UnknownNQuantiles`) is judged as
            # a whole; its inner Name is not visited separately.
            bad.add(ast.unparse(node))
        elif isinstance(node, ast.Constant):
            pass  # None / string forward references carry no class
        else:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._collect_non_plain(child, bad)

    # -- RPL205 / RPL206: shared-memory lifecycle ----------------------

    def _check_shm(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        """Segment hygiene everywhere (the shm module itself is exempt)."""
        shm_module = options.get("shm-module")
        if shm_module and module.module == shm_module:
            return
        prefix = options.get("shm-name-prefix")
        parents = {
            child: parent
            for parent in ast.walk(module.tree)
            for child in ast.iter_child_nodes(parent)
        }
        for node in ast.walk(module.tree):
            if (
                prefix
                and isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and prefix in node.value
            ):
                yield self._finding(
                    module,
                    node,
                    "RPL206",
                    f"segment-name prefix {prefix!r} appears as a literal; "
                    f"import SEGMENT_PREFIX from {shm_module} so a leak "
                    "scan of /dev/shm stays conclusive",
                )
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve(node.func)
            if dotted is None:
                continue
            if dotted.rsplit(".", 1)[-1] == "SharedMemory" and (
                dotted == "SharedMemory"
                or dotted.startswith(("multiprocessing.", "shared_memory."))
            ):
                yield self._finding(
                    module,
                    node,
                    "RPL206",
                    f"raw `{dotted}(...)` outside {shm_module}; go through "
                    "ArenaSegment so naming and close/unlink lifecycle "
                    "stay in one module",
                )
            elif ".".join(dotted.split(".")[-2:]) in _SHM_ACQUIRE_TAILS:
                if not self._shm_released(node, parents):
                    yield self._finding(
                        module,
                        node,
                        "RPL205",
                        f"`{dotted}(...)` maps a segment with no visible "
                        "release: use it as a `with` item, pair it with a "
                        "try/finally calling close/unlink/destroy, or "
                        "store it on `self` in a class with a teardown "
                        "method",
                    )

    def _shm_released(
        self, call: ast.Call, parents: Mapping[ast.AST, ast.AST]
    ) -> bool:
        """Whether an acquisition call has a visible release path."""
        node: ast.AST = call
        function: ast.AST | None = None
        assigned_to_self = False
        while node in parents:
            parent = parents[node]
            if isinstance(parent, ast.withitem):
                # ``with ArenaSegment.create(...) as seg:`` — __exit__
                # releases on every path out of the block.
                return True
            if (
                isinstance(parent, (ast.Assign, ast.AnnAssign))
                and self._targets_self(parent)
            ):
                assigned_to_self = True
            if isinstance(
                parent, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if function is None:
                    function = parent
                    if self._has_release_finally(parent):
                        return True
            elif isinstance(parent, ast.ClassDef) and assigned_to_self:
                # ``self._segment = ...`` inside a class that defines
                # close/destroy/__exit__: teardown owns the release.
                if any(
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name in _SHM_TEARDOWN_METHODS
                    for stmt in parent.body
                ):
                    return True
            node = parent
        return False

    @staticmethod
    def _targets_self(stmt: ast.Assign | ast.AnnAssign) -> bool:
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        return any(
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            for target in targets
        )

    @staticmethod
    def _has_release_finally(function: ast.AST) -> bool:
        """A try/finally in the function whose finalbody releases."""
        for node in ast.walk(function):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for final_stmt in node.finalbody:
                for inner in ast.walk(final_stmt):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr in _SHM_RELEASE_ATTRS
                    ):
                        return True
        return False

    def _finding(
        self, module: SourceModule, node: ast.AST, code: str, message: str
    ) -> Finding:
        return Finding(
            module.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            code,
            self.name,
            message,
        )
