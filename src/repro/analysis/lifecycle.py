"""replint pass ``resource-lifecycle``: acquire/release typestate checks.

The Section 6 parallel protocol's memory bound only holds if every
resource the runtime maps — shared-memory segments, file handles,
persistent worker pools — is released on *every* exit path.
``spawn-safety``'s RPL205 special-cased shared-memory acquisitions;
this pass generalizes that check into typestate tracking over a small
catalogue of resource classes, each with its acquire constructors,
release methods, and owning-teardown method names.

An acquisition is *safe* when one of these holds:

* it is a ``with`` item (or the bound name is later used as one);
* its result is returned — ownership transfers to the caller;
* it is stored on ``self`` in a class that defines a teardown method
  (``close``/``shutdown``/``__exit__``/``__del__`` …);
* it is registered with an ``ExitStack`` (``enter_context``/
  ``callback``/``push``);
* the bound name is released inside a ``finally`` block.

Codes:

* ``RPL701`` — no visible release on any path: the resource outlives
  its scope (a ``/dev/shm`` leak, an fd leak, a zombie worker pool).
* ``RPL702`` — released on the happy path only (a plain ``x.close()``
  not inside ``finally``): an exception between acquire and release
  leaks the resource exactly when the system is already in trouble.
* ``RPL703`` — the name holding an unreleased resource is rebound by
  another acquisition (including loop bodies that acquire into the
  same name each iteration): the previous resource becomes
  unreachable *and* unreleased.

Module-level acquisitions (process-lifetime singletons) are exempt, as
is the module that implements a resource class itself (the
``exempt-modules`` option — its internals necessarily manipulate raw
handles).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from typing import Any

from repro.analysis.engine import Finding, Pass, SourceModule, register

__all__ = ["ResourceLifecyclePass"]

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: ExitStack-style registration methods: passing a resource into one of
#: these transfers release responsibility to the stack.
_STACK_METHODS = {"enter_context", "callback", "push", "push_async_exit"}


@dataclass(frozen=True, slots=True)
class _Resource:
    """One resource class: how it is acquired, released, and owned."""

    label: str
    #: Dotted names matched against the full call target, its last two
    #: parts, or its last part (``ArenaSegment.create`` vs ``open``).
    acquire: frozenset[str]
    #: Method names whose call on the bound name releases the resource.
    release: frozenset[str]
    #: Methods whose presence marks a class as owning teardown.
    teardown: frozenset[str]
    #: Module functions taking the resource as first argument that
    #: release it (``os.close(fd)`` for descriptor-level handles).
    release_functions: frozenset[str] = frozenset()


_RESOURCES = (
    _Resource(
        label="shared-memory segment",
        acquire=frozenset(
            {"ArenaSegment.create", "ArenaSegment.attach", "SharedMemory"}
        ),
        release=frozenset({"close", "unlink", "destroy"}),
        teardown=frozenset({"close", "destroy", "__exit__", "__del__"}),
    ),
    _Resource(
        label="file handle",
        acquire=frozenset(
            {
                "open",
                "os.fdopen",
                "io.open",
                "gzip.open",
                "bz2.open",
                "lzma.open",
                "tempfile.TemporaryFile",
                "tempfile.NamedTemporaryFile",
                "socket.socket",
                "os.open",
            }
        ),
        release=frozenset({"close"}),
        teardown=frozenset({"close", "__exit__", "__del__"}),
        release_functions=frozenset({"os.close"}),
    ),
    _Resource(
        label="worker pool",
        acquire=frozenset(
            {
                "PersistentPool",
                "ProcessPoolExecutor",
                "ThreadPoolExecutor",
                "multiprocessing.Pool",
            }
        ),
        release=frozenset({"shutdown", "close", "stop", "terminate", "join"}),
        teardown=frozenset(
            {"shutdown", "close", "stop", "terminate", "__exit__", "__del__"}
        ),
    ),
)


@register
class ResourceLifecyclePass(Pass):
    """Every acquired resource has an exception-safe release path."""

    name = "resource-lifecycle"
    codes = {
        "RPL701": "resource acquired without a release path",
        "RPL702": "resource release is not exception-safe",
        "RPL703": "resource name rebound before release",
    }
    default_options: dict[str, Any] = {
        "packages": ["repro"],
        # Modules implementing a resource class manipulate raw handles
        # by design; their discipline is covered by their own tests.
        "exempt-modules": ["repro.runtime.shm"],
    }

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        exempt = set(options.get("exempt-modules", ()))
        if module.module in exempt:
            return
        for func in ast.walk(module.tree):
            if isinstance(func, _FunctionNode):
                yield from self._check_function(module, func)

    # -- per-function typestate ----------------------------------------

    def _check_function(
        self, module: SourceModule, func: _FunctionNode
    ) -> Iterator[Finding]:
        acquisitions = [
            (node, resource)
            for node in self._own_nodes(func)
            if isinstance(node, ast.Call)
            for resource in [_match_resource(module, node)]
            if resource is not None
        ]
        if not acquisitions:
            return
        owning_class = self._enclosing_teardown_methods(module, func)
        parents = {
            child: parent
            for parent in ast.walk(func)
            for child in ast.iter_child_nodes(parent)
        }
        bound_events: dict[str, list[tuple[int, str]]] = {}
        for name, line, kind in self._name_events(module, func, acquisitions):
            bound_events.setdefault(name, []).append((line, kind))
        for call, resource in acquisitions:
            yield from self._judge(
                module, func, call, resource, parents, bound_events, owning_class
            )

    def _judge(
        self,
        module: SourceModule,
        func: _FunctionNode,
        call: ast.Call,
        resource: _Resource,
        parents: Mapping[ast.AST, ast.AST],
        bound_events: Mapping[str, list[tuple[int, str]]],
        owning_class: frozenset[str],
    ) -> Iterator[Finding]:
        context = _immediate_context(call, parents)
        if context in ("with", "return", "stack"):
            return
        if context == "self":
            if owning_class & resource.teardown:
                return
            yield self._finding(
                module,
                call,
                "RPL701",
                f"{resource.label} stored on `self` in a class with no "
                f"teardown method ({_fmt(resource.teardown)}); nothing "
                "ever releases it",
            )
            return
        if context == "discarded":
            yield self._finding(
                module,
                call,
                "RPL701",
                f"{resource.label} acquired and immediately discarded; "
                "bind it and release it, or use it as a `with` item",
            )
            return
        name = context  # bound local name
        events = sorted(bound_events.get(name, []))
        line = call.lineno
        later = [(ln, kind) for ln, kind in events if ln >= line]
        kinds = {kind for _, kind in later}
        if {"with", "transfer", "stack", "finally-release"} & kinds:
            return
        # RPL703: the same name re-acquires before any release event.
        reacquired = [
            ln
            for ln, kind in later
            if kind == "acquire" and ln > line
        ]
        released = [ln for ln, kind in later if kind == "release"]
        if reacquired and (not released or min(released) > min(reacquired)):
            yield self._finding(
                module,
                call,
                "RPL703",
                f"`{name}` holds an unreleased {resource.label} and is "
                f"rebound by another acquisition on line {min(reacquired)}; "
                "the first resource becomes unreachable without release",
            )
            return
        if _in_loop_without_release(call, parents, events):
            yield self._finding(
                module,
                call,
                "RPL703",
                f"`{name}` acquires a {resource.label} each loop iteration "
                "without releasing inside the loop; every iteration but "
                "the last leaks",
            )
            return
        if released:
            yield self._finding(
                module,
                call,
                "RPL702",
                f"{resource.label} bound to `{name}` is released only on "
                "the happy path; an exception before the release leaks it "
                "— use a `with` block or try/finally",
            )
            return
        yield self._finding(
            module,
            call,
            "RPL701",
            f"{resource.label} bound to `{name}` has no visible release "
            f"({_fmt(resource.release)}): use it as a `with` item, pair "
            "it with try/finally, return it, or store it on `self` in a "
            "class with a teardown method",
        )

    # -- event extraction ----------------------------------------------

    def _name_events(
        self,
        module: SourceModule,
        func: _FunctionNode,
        acquisitions: list[tuple[ast.Call, _Resource]],
    ) -> Iterator[tuple[str, int, str]]:
        """(name, line, kind) events over the bound resource names."""
        acquired_names = set()
        release_attrs: dict[str, set[str]] = {}
        release_funcs: dict[str, set[str]] = {}
        by_call = dict(acquisitions)
        for call, resource in acquisitions:
            name = _assigned_name(call, func)
            if name is None:
                continue
            acquired_names.add(name)
            release_attrs.setdefault(name, set()).update(resource.release)
            release_funcs.setdefault(name, set()).update(
                resource.release_functions
            )
        if not acquired_names:
            return
        finally_lines = _finally_line_ranges(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                calls = _calls_within(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id in (
                        acquired_names
                    ):
                        if any(call in by_call for call in calls):
                            yield target.id, node.lineno, "acquire"
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id in acquired_names
                    ):
                        # self.x = name — ownership moves to the object.
                        yield node.value.id, node.lineno, "transfer"
            elif isinstance(node, ast.Return):
                if node.value is not None:
                    for used in _transferred_names(node.value):
                        if used in acquired_names:
                            yield used, node.lineno, "transfer"
            elif isinstance(node, ast.withitem):
                expr = node.context_expr
                if isinstance(expr, ast.Name) and expr.id in acquired_names:
                    yield expr.id, expr.lineno, "with"
            elif isinstance(node, ast.Call):
                yield from self._call_events(
                    module,
                    node,
                    acquired_names,
                    release_attrs,
                    release_funcs,
                    finally_lines,
                )

    def _call_events(
        self,
        module: SourceModule,
        node: ast.Call,
        acquired_names: set[str],
        release_attrs: Mapping[str, set[str]],
        release_funcs: Mapping[str, set[str]],
        finally_lines: list[tuple[int, int]],
    ) -> Iterator[tuple[str, int, str]]:
        def kind_at(line: int) -> str:
            in_finally = any(lo <= line <= hi for lo, hi in finally_lines)
            return "finally-release" if in_finally else "release"

        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in acquired_names
            and func.attr in release_attrs.get(func.value.id, ())
        ):
            yield func.value.id, node.lineno, kind_at(node.lineno)
            return
        if isinstance(func, ast.Attribute) and func.attr in _STACK_METHODS:
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id in acquired_names:
                    yield arg.id, node.lineno, "stack"
            return
        # Function-style release: os.close(fd) and friends.
        if node.args and isinstance(node.args[0], ast.Name):
            name = node.args[0].id
            if name in acquired_names:
                dotted = module.resolve(func)
                if dotted in release_funcs.get(name, ()):
                    yield name, node.lineno, kind_at(node.lineno)

    # -- context helpers -----------------------------------------------

    def _own_nodes(self, func: _FunctionNode) -> Iterator[ast.AST]:
        """Nodes of this function, not of defs nested inside it."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, _FunctionNode):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _enclosing_teardown_methods(
        self, module: SourceModule, func: _FunctionNode
    ) -> frozenset[str]:
        """Method names of the class lexically containing ``func``."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and func in node.body:
                return frozenset(
                    stmt.name
                    for stmt in node.body
                    if isinstance(stmt, _FunctionNode)
                )
        return frozenset()

    def _finding(
        self, module: SourceModule, node: ast.AST, code: str, message: str
    ) -> Finding:
        return Finding(
            module.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            code,
            self.name,
            message,
        )


# ----------------------------------------------------------------------
# Matching and shape helpers
# ----------------------------------------------------------------------

def _match_resource(module: SourceModule, call: ast.Call) -> _Resource | None:
    dotted = module.resolve(call.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    forms = {dotted, ".".join(parts[-2:]), parts[-1]}
    for resource in _RESOURCES:
        if forms & resource.acquire:
            return resource
    return None


def _immediate_context(
    call: ast.Call, parents: Mapping[ast.AST, ast.AST]
) -> str:
    """How the acquisition's value is consumed at the call site.

    Returns ``"with"`` / ``"return"`` / ``"self"`` / ``"stack"`` /
    ``"discarded"``, or the bound local name.  Wrapper expressions that
    merely pass the value along (``x if cond else y``, ``await``,
    ``a or b``, walrus) are climbed through to the real consumer.
    """
    node: ast.AST = call
    parent = parents.get(node)
    while isinstance(parent, (ast.IfExp, ast.BoolOp, ast.Await, ast.NamedExpr)):
        node = parent
        parent = parents.get(node)
    if isinstance(parent, ast.withitem):
        return "with"
    if isinstance(parent, ast.Return):
        return "return"
    if isinstance(parent, ast.Call) and node in parent.args:
        func = parent.func
        if isinstance(func, ast.Attribute) and func.attr in _STACK_METHODS:
            return "stack"
        # Any other call argument: the callee may or may not take
        # ownership — conservatively treat like a discard so the author
        # either binds it or justifies the hand-off.
        return "discarded"
    if isinstance(parent, (ast.Assign, ast.AnnAssign)):
        targets = (
            parent.targets if isinstance(parent, ast.Assign) else [parent.target]
        )
        for target in targets:
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                if target.value.id in ("self", "cls"):
                    return "self"
            if isinstance(target, ast.Name):
                return target.id
        return "discarded"
    return "discarded"


def _assigned_name(call: ast.Call, func: _FunctionNode) -> str | None:
    """The local name an acquisition binds to, seeing through wrapper
    expressions (``stream = open(p) if p else sys.stdin``)."""
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and call in _calls_within(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    return target.id
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if call in _calls_within(node.value) and isinstance(
                node.target, ast.Name
            ):
                return node.target.id
    return None


def _calls_within(expr: ast.expr) -> set[ast.Call]:
    """Call nodes of an expression reachable through wrapper shapes only
    (conditional/boolean/await/walrus) — not arbitrary sub-expressions,
    so ``x = wrap(open(p))`` does not credit the open to ``x``."""
    calls: set[ast.Call] = set()
    stack: list[ast.expr] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            calls.add(node)
        elif isinstance(node, ast.IfExp):
            stack.extend((node.body, node.orelse))
        elif isinstance(node, ast.BoolOp):
            stack.extend(node.values)
        elif isinstance(node, ast.Await):
            stack.append(node.value)
        elif isinstance(node, ast.NamedExpr):
            stack.append(node.value)
    return calls


def _transferred_names(expr: ast.expr) -> set[str]:
    """Names a ``return`` hands to the caller *by value*.

    ``return handle`` (also via tuples, wrappers, or as a constructor
    argument) transfers ownership; ``return handle.readline()`` only
    reads *through* the handle and leaks it — so a name serving as the
    base of an attribute access does not count.
    """
    attribute_bases = {
        node.value
        for node in ast.walk(expr)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
    }
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and node not in attribute_bases
    }


def _finally_line_ranges(func: _FunctionNode) -> list[tuple[int, int]]:
    """Line spans of every ``finally`` block (and ``__exit__`` bodies
    count via the teardown rule, not here)."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(func):
        if isinstance(node, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            for stmt in node.finalbody:
                spans.append((stmt.lineno, _last_line(stmt)))
    return spans


def _last_line(stmt: ast.stmt) -> int:
    return max(
        (getattr(node, "end_lineno", None) or getattr(node, "lineno", 0))
        for node in ast.walk(stmt)
    )


def _in_loop_without_release(
    call: ast.Call,
    parents: Mapping[ast.AST, ast.AST],
    events: list[tuple[int, str]],
) -> bool:
    """Acquisition in a loop body with no release inside the same loop."""
    node: ast.AST = call
    while node in parents:
        parent = parents[node]
        if isinstance(parent, (ast.For, ast.AsyncFor, ast.While)):
            lo, hi = parent.lineno, _last_line(parent)
            return not any(
                lo <= line <= hi
                and kind in ("release", "finally-release", "with", "transfer")
                for line, kind in events
            )
        node = parent
    return False


def _fmt(names: frozenset[str]) -> str:
    return "/".join(sorted(names))
