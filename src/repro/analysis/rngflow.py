"""replint pass ``rng-flow``: every RNG must be *reachable* from a seed.

The ``determinism`` pass proves the syntactic half of the paper's
Section 4.5 contract: RNG constructors receive *some* argument
(``RPL104``).  This pass proves the dataflow half — that the argument is
actually *derived from a seed*, that a seed a function accepts is
actually *used*, and that a seed a caller holds is actually *threaded
through* cross-module calls.  A dropped seed is worse than a missing
one: the signature advertises replayability the implementation silently
does not have, and the failure only surfaces when a run cannot be
reproduced.

Codes:

* ``RPL111`` — an RNG constructed from a value with no visible
  derivation from a seed (a config lookup, an unrelated variable,
  an explicit ``None``).  Derivation is tracked intraprocedurally:
  seed-named parameters and attributes, assignments whose right side
  derives, arithmetic/tuple/subscript combinations of derived values,
  and calls that take or name a seed (``seed_for_worker(seed, i)``,
  ``rng.randrange(...)`` on a derived ``rng``) all derive.  Literal
  constants also count — a hard-coded seed is replayable, just rigid.
* ``RPL112`` — a function accepts a seed-named parameter and never
  reads it: the seed is accepted but dropped.  Underscore-prefixed
  parameters, stubs, and ``abstractmethod``/``overload`` definitions
  are exempt.
* ``RPL113`` — (whole-program) a call into *another module* whose
  target accepts a defaulted seed parameter, made from a function that
  itself holds a seed, without passing one: the callee silently falls
  back to its default and the caller's seed never reaches it.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator, Mapping
from typing import Any

from repro.analysis.engine import Finding, Pass, SourceModule, register
from repro.analysis.project import ProjectGraph

__all__ = ["RngFlowPass"]

#: Identifier fragments that mark a name/attribute/call as seed-derived.
_SEED_HINT = re.compile(r"seed|entropy|spawn_key", re.IGNORECASE)

#: Constructors whose (first or ``seed=``) argument must derive from a seed.
_RNG_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
}

#: Decorator name tails that exempt a def from the dropped-seed check.
_ABSTRACT_DECORATORS = {"abstractmethod", "overload", "override"}

_FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


def _is_seedish(name: str) -> bool:
    return _SEED_HINT.search(name) is not None


@register
class RngFlowPass(Pass):
    """Seeds flow into RNGs, are read when accepted, and are threaded."""

    name = "rng-flow"
    codes = {
        "RPL111": "RNG constructed from a value not derived from a seed",
        "RPL112": "seed parameter accepted but never read",
        "RPL113": "cross-module call drops the caller's seed",
    }
    default_options: dict[str, Any] = {
        "packages": [
            "repro.core",
            "repro.sampling",
            "repro.kernels",
            "repro.stats",
            "repro.baselines",
            "repro.audit",
            "repro.runtime",
            "repro.service",
        ],
    }

    # -- per-file: RPL111 / RPL112 -------------------------------------

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        yield from self._scan_scope(module, module.tree, frozenset())

    def _scan_scope(
        self,
        module: SourceModule,
        scope: ast.Module | _FunctionNode,
        inherited: frozenset[str],
    ) -> Iterator[Finding]:
        """One lexical scope: seed the derived set, walk statements in order."""
        derived = set(inherited)
        if isinstance(scope, _FunctionNode):
            params = _param_names(scope)
            derived.update(name for name in params if _is_seedish(name))
            yield from self._check_dropped_seed(module, scope, params)
        yield from self._scan_body(module, scope.body, derived)

    def _scan_body(
        self, module: SourceModule, body: list[ast.stmt], derived: set[str]
    ) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, _FunctionNode):
                yield from self._scan_scope(module, stmt, frozenset(derived))
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._scan_body(module, stmt.body, set(derived))
                continue
            # Track derivation through simple assignments and loop targets.
            if isinstance(stmt, ast.Assign) and _derives(stmt.value, derived):
                for target in stmt.targets:
                    derived.update(_name_targets(target))
            elif (
                isinstance(stmt, ast.AnnAssign)
                and stmt.value is not None
                and _derives(stmt.value, derived)
            ):
                derived.update(_name_targets(stmt.target))
            elif isinstance(stmt, (ast.For, ast.AsyncFor)) and _derives(
                stmt.iter, derived
            ):
                derived.update(_name_targets(stmt.target))
            yield from self._check_constructions(module, stmt, derived)
            for block in _sub_blocks(stmt):
                yield from self._scan_body(module, block, derived)

    def _check_constructions(
        self, module: SourceModule, stmt: ast.stmt, derived: set[str]
    ) -> Iterator[Finding]:
        """RPL111 on RNG constructor calls in this statement's expressions."""
        for node in _walk_shallow(stmt):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve(node.func)
            if dotted not in _RNG_CONSTRUCTORS:
                continue
            seed_arg = _seed_argument(node)
            if seed_arg is None:
                continue  # zero-arg construction is determinism's RPL104
            if _derives(seed_arg, derived):
                continue
            rendered = ast.unparse(seed_arg)
            yield self._finding(
                module,
                node,
                "RPL111",
                f"`{dotted}({rendered})` is seeded from a value with no "
                "visible derivation from a seed parameter; thread an "
                "explicit seed (or a value computed from one) into the "
                "constructor",
            )

    def _check_dropped_seed(
        self, module: SourceModule, func: _FunctionNode, params: list[str]
    ) -> Iterator[Finding]:
        """RPL112: a seed-named parameter the body never reads."""
        seedish = [
            name for name in params if _is_seedish(name) and not name.startswith("_")
        ]
        if not seedish or _is_stub(func) or _is_abstract(module, func):
            return
        read = {
            node.id
            for node in ast.walk(func)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }
        for name in seedish:
            if name not in read:
                yield self._finding(
                    module,
                    func,
                    "RPL112",
                    f"`{func.name}` accepts `{name}` but never reads it; "
                    "the signature promises replayability the body does "
                    "not deliver — thread the seed or drop the parameter",
                )

    # -- whole-program: RPL113 -----------------------------------------

    def project_check(
        self, graph: ProjectGraph, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        packages = list(options.get("packages", ()))
        for module in graph.modules.values():
            if packages and not module.in_packages(packages):
                continue
            for func in ast.walk(module.tree):
                if not isinstance(func, _FunctionNode):
                    continue
                held = [n for n in _param_names(func) if _is_seedish(n)]
                if not held:
                    continue
                yield from self._check_call_sites(graph, module, func, held[0])

    def _check_call_sites(
        self,
        graph: ProjectGraph,
        module: SourceModule,
        func: _FunctionNode,
        held_seed: str,
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve(node.func)
            if dotted is None:
                continue
            info = graph.callable_info(dotted)
            if info is None or info.module == module.module:
                continue
            seedish = [name for name in info.params if _is_seedish(name)]
            if not seedish:
                continue
            # Only a *defaulted* seed can be silently dropped — a
            # required one missing is a TypeError the tests catch.
            target_param = seedish[0]
            if target_param not in info.with_default:
                continue
            if _call_threads_seed(node, info.params, target_param):
                continue
            # A seed can also travel as a *derived value* in any other
            # slot — e.g. passing `rng=make_rng(seed)` threads the seed
            # without ever naming the callee's seed parameter.
            held = {n for n in _param_names(func) if _is_seedish(n)}
            if any(
                _carries_seed(arg, held) for arg in node.args
            ) or any(
                kw.value is not None and _carries_seed(kw.value, held)
                for kw in node.keywords
            ):
                continue
            yield self._finding(
                module,
                node,
                "RPL113",
                f"call to `{dotted}` lets `{target_param}` silently "
                f"default while the caller holds `{held_seed}`; pass "
                f"`{target_param}={held_seed}` (or a value derived from "
                "it) so the seed survives the module boundary",
                severity="warning",
            )

    def _finding(
        self,
        module: SourceModule,
        node: ast.AST,
        code: str,
        message: str,
        severity: str = "error",
    ) -> Finding:
        return Finding(
            module.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            code,
            self.name,
            message,
            severity=severity,
        )


# ----------------------------------------------------------------------
# Derivation and call-shape helpers
# ----------------------------------------------------------------------

def _derives(expr: ast.expr, derived: set[str]) -> bool:
    """Whether an expression is visibly derived from a seed."""
    if isinstance(expr, ast.Constant):
        # A literal is replayable (just rigid) — except None, which is
        # an explicit request for OS entropy.
        return expr.value is not None
    if isinstance(expr, ast.Name):
        return expr.id in derived or _is_seedish(expr.id)
    if isinstance(expr, ast.Attribute):
        return _is_seedish(expr.attr) or _derives(expr.value, derived)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and _is_seedish(func.id):
            return True
        if isinstance(func, ast.Attribute) and (
            _is_seedish(func.attr) or _derives(func.value, derived)
        ):
            return True
        return any(_derives(arg, derived) for arg in expr.args) or any(
            kw.value is not None and _derives(kw.value, derived)
            for kw in expr.keywords
        )
    if isinstance(expr, ast.BinOp):
        return _derives(expr.left, derived) or _derives(expr.right, derived)
    if isinstance(expr, ast.UnaryOp):
        return _derives(expr.operand, derived)
    if isinstance(expr, ast.BoolOp):
        return any(_derives(value, derived) for value in expr.values)
    if isinstance(expr, ast.IfExp):
        return _derives(expr.body, derived) and _derives(expr.orelse, derived)
    if isinstance(expr, ast.Subscript):
        return _derives(expr.value, derived)
    if isinstance(expr, (ast.Tuple, ast.List)):
        return any(_derives(element, derived) for element in expr.elts)
    if isinstance(expr, ast.Starred):
        return _derives(expr.value, derived)
    return False


def _seed_argument(call: ast.Call) -> ast.expr | None:
    """The expression feeding the seed slot of an RNG constructor."""
    for keyword in call.keywords:
        if keyword.arg is not None and _is_seedish(keyword.arg):
            return keyword.value
        if keyword.arg is None:
            return None  # **kwargs expansion: assume threaded
    if call.args:
        first = call.args[0]
        return None if isinstance(first, ast.Starred) else first
    return None


def _carries_seed(expr: ast.expr, held: set[str]) -> bool:
    """Whether an argument expression mentions a seed-bearing name.

    Stricter than :func:`_derives`: a literal constant is "derived" for
    construction purposes but does not carry the *caller's* seed across
    a call, so only seed-named names/attributes count here.
    """
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and (
            node.id in held or _is_seedish(node.id)
        ):
            return True
        if isinstance(node, ast.Attribute) and _is_seedish(node.attr):
            return True
    return False


def _call_threads_seed(
    call: ast.Call, params: tuple[str, ...], target_param: str
) -> bool:
    """Whether a call site visibly supplies the target seed parameter."""
    for keyword in call.keywords:
        if keyword.arg is None:  # **kwargs — assume it carries the seed
            return True
        if keyword.arg == target_param or _is_seedish(keyword.arg):
            return True
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        return True  # *args expansion — cannot see, assume threaded
    try:
        index = params.index(target_param)
    except ValueError:  # pragma: no cover - target comes from params
        return True
    return index < len(call.args)


def _param_names(func: _FunctionNode) -> list[str]:
    args = func.args
    return [
        a.arg
        for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
    ]


def _name_targets(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names.update(_name_targets(element))
        return names
    return set()


def _sub_blocks(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    """The nested statement lists of a compound statement, in order."""
    for field in ("body", "orelse", "finalbody"):
        block = getattr(stmt, field, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(stmt, "handlers", []):
        yield handler.body


def _walk_shallow(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Expression nodes of one statement, not descending into sub-blocks
    or nested defs (those are visited by their own scope/body scans)."""
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if node is not stmt and isinstance(
            node, (ast.stmt, ast.excepthandler)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_stub(func: _FunctionNode) -> bool:
    """Docstring-only / pass / ellipsis / raise bodies accept unused args."""
    body = func.body
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]
    if not body:
        return True
    return all(
        isinstance(stmt, (ast.Pass, ast.Raise))
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


def _is_abstract(module: SourceModule, func: _FunctionNode) -> bool:
    for decorator in func.decorator_list:
        dotted = module.resolve(decorator) or ""
        if dotted.rsplit(".", 1)[-1] in _ABSTRACT_DECORATORS:
            return True
    return False
