"""replint pass ``native-c``: CPython API discipline in `_native.c`.

The compiled kernel backend is the one part of the repo the Python-side
passes cannot see, and the one part where a mistake is not an exception
but a leak, a crash, or silent heap corruption.  This pass is a
dependency-free lexer + per-function scanner over the C sources named
in its ``sources`` option (no libclang, no compiler — it must run on a
bare CI box), auditing the four CPython-API mistakes that survive code
review most often:

* ``RPL801`` — an owned reference (or ``PyMem_*`` allocation) is live
  at an early error ``return`` and never released on that path.
  Ownership is interval-tracked per function: it starts at an
  allocating assignment and ends at the first ``Py_DECREF`` /
  ``Py_XDECREF`` / ``Py_CLEAR`` / ``PyMem_Free``, at a
  reference-stealing use (``PyTuple_SET_ITEM``, ``Py_BuildValue``
  ``"N"`` units, struct-field stores), or at a ``return`` of the
  value.  The variable an enclosing ``if (x == NULL)`` just proved to
  be NULL is exempt.  The model is deliberately path-insensitive in
  the safe direction: a release on *any* earlier line ends the
  interval, so it under-reports rather than false-positives.
* ``RPL802`` — ``PyArg_ParseTuple`` / ``PyArg_ParseTupleAndKeywords``
  / ``Py_BuildValue`` format-unit count disagrees with the number of
  variadic arguments actually passed (a silent stack read/write out
  of bounds).  Formats with units the scanner does not model are
  skipped, never guessed.
* ``RPL803`` — the result of an allocating call is bound to a variable
  that is never NULL-checked before use (immediately ``return``-ed
  results are exempt: NULL propagates correctly to the caller).
* ``RPL804`` — a function acquires a buffer view
  (``PyObject_GetBuffer`` or a configured acquire/release pair such as
  ``f64view_acquire``/``f64view_release``) and contains no call to the
  paired release; views pin the exporter's memory until released.

Suppressions use C comments, same grammar as Python::

    obj = make_table();  /* replint: disable=native-c -- ownership
                            moves to the registry two lines down */

A suppression covers its own line and the next line; one without a
``--`` justification is inert, exactly like RPL001 semantics.
"""

from __future__ import annotations

import re
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.analysis.engine import Finding, Pass, SourceModule, register

__all__ = ["NativeCPass"]

#: Calls returning a *new* PyObject reference the caller owns.
_OWNING_ALLOCATORS = {
    "PyBytes_FromStringAndSize",
    "PyBytes_FromString",
    "PyUnicode_FromString",
    "PyUnicode_FromFormat",
    "PyLong_FromLong",
    "PyLong_FromLongLong",
    "PyLong_FromSsize_t",
    "PyLong_FromUnsignedLong",
    "PyFloat_FromDouble",
    "PyBool_FromLong",
    "PyList_New",
    "PyTuple_New",
    "PyDict_New",
    "PySequence_Fast",
    "PySequence_List",
    "PySequence_Tuple",
    "PySequence_GetItem",
    "PyObject_GetAttrString",
    "PyObject_CallObject",
    "PyObject_CallNoArgs",
    "PyObject_CallFunction",
    "PyObject_CallMethod",
    "PyImport_ImportModule",
    "PyIter_Next",
    "Py_BuildValue",
}

#: Calls returning raw memory released by ``PyMem_Free``/``free``.
_MEMORY_ALLOCATORS = {
    "PyMem_Malloc",
    "PyMem_Calloc",
    "PyMem_Realloc",
    "PyMem_RawMalloc",
    "malloc",
    "calloc",
}

#: Calls that end an ownership interval for their first argument.
_RELEASERS = {"Py_DECREF", "Py_XDECREF", "Py_CLEAR", "PyMem_Free", "free",
              "PyMem_RawFree"}

#: Call(argument-index) pairs that *steal* the reference passed in.
_STEALERS = {
    "PyTuple_SET_ITEM": 2,
    "PyTuple_SetItem": 2,
    "PyList_SET_ITEM": 2,
    "PyList_SetItem": 2,
    "PyModule_AddObject": 2,
}

#: Format units consuming one variadic argument.  ``#`` after a unit
#: adds one; ``*`` replaces the pointer+length pair with one
#: ``Py_buffer*``; ``O!``/``O&`` add one; grouping and metadata chars
#: consume none.
_ONE_ARG_UNITS = set("szyuUOSNYiIbBhHlkLKncCfdDp")
_ZERO_ARG_CHARS = set("()[]{}|$, \t")

_IDENT = r"[A-Za-z_]\w*"

_SUPPRESS_RE = re.compile(
    r"replint:\s*disable=([A-Za-z0-9_,\- ]+?)\s*--\s*\S"
)


@dataclass(frozen=True, slots=True)
class _Stmt:
    """One lexed statement: text (strings intact), line, brace depth."""

    text: str
    line: int
    depth: int
    is_header: bool  # ends with `{` — a control/compound header


@dataclass(frozen=True, slots=True)
class _CFunction:
    name: str
    line: int
    statements: tuple[_Stmt, ...]


@register
class NativeCPass(Pass):
    """Refcount, format-arity, NULL-check, and buffer-pair discipline."""

    name = "native-c"
    codes = {
        "RPL801": "owned reference leaked on an error return path",
        "RPL802": "format string arity mismatch",
        "RPL803": "allocating call result never NULL-checked",
        "RPL804": "buffer acquired without a paired release",
    }
    default_options: dict[str, Any] = {
        "sources": ["src/repro/kernels/_native.c"],
        "buffer-pairs": [
            ["PyObject_GetBuffer", "PyBuffer_Release"],
            ["f64view_acquire", "f64view_release"],
            ["viewpair_acquire", "viewpair_release"],
            ["acquire_weighted", "release_weighted"],
        ],
    }

    def applies_to(self, module: SourceModule, options: Mapping[str, Any]) -> bool:
        return False  # C sources never enter the per-file .py phase

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        return iter(())

    def project_check(
        self, graph: Any, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        for source in options.get("sources", ()):
            path = Path(source)
            if not path.is_file():
                continue
            text = path.read_text(encoding="utf-8")
            yield from self.check_source(path.as_posix(), text, options)

    def check_source(
        self, rel: str, text: str, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        """Analyze one C translation unit (separated out for tests)."""
        suppressed = _suppressed_lines(text, self.name)
        pairs = [
            (str(acquire), str(release))
            for acquire, release in options.get("buffer-pairs", ())
        ]
        clean = _strip_comments(text)
        for function in _functions(clean):
            for finding in self._check_function(rel, function, pairs):
                if finding.line not in suppressed:
                    yield finding

    # -- per-function checks -------------------------------------------

    def _check_function(
        self, rel: str, function: _CFunction, pairs: list[tuple[str, str]]
    ) -> Iterator[Finding]:
        yield from self._check_error_paths(rel, function)
        yield from self._check_formats(rel, function)
        yield from self._check_null_checks(rel, function)
        yield from self._check_buffer_pairs(rel, function, pairs)

    # RPL801 ------------------------------------------------------------

    def _check_error_paths(
        self, rel: str, function: _CFunction
    ) -> Iterator[Finding]:
        acquisitions = _acquisitions(function)
        if not acquisitions:
            return
        ends = _interval_ends(function, acquisitions)
        for index, stmt in enumerate(function.statements):
            error = _error_return(stmt)
            if error is None:
                continue
            exempt = _null_checked_vars(function.statements, index)
            for var, acquired_at in acquisitions.items():
                if acquired_at >= index:
                    continue
                if ends.get(var, len(function.statements) + 1) < index:
                    continue
                if var in exempt:
                    continue
                yield Finding(
                    rel,
                    stmt.line,
                    1,
                    "RPL801",
                    self.name,
                    f"`{error}` in `{function.name}` leaks `{var}` "
                    f"(acquired on line "
                    f"{function.statements[acquired_at].line}); release "
                    "it on this error path before returning",
                )

    # RPL802 ------------------------------------------------------------

    def _check_formats(self, rel: str, function: _CFunction) -> Iterator[Finding]:
        for stmt in function.statements:
            for call_name, format_index in (
                ("PyArg_ParseTuple", 1),
                ("PyArg_ParseTupleAndKeywords", 2),
                ("Py_BuildValue", 0),
            ):
                for args in _calls_of(stmt.text, call_name):
                    if len(args) <= format_index:
                        continue
                    fmt = _string_literal(args[format_index])
                    if fmt is None:
                        continue
                    expected = _format_arity(fmt)
                    if expected is None:
                        continue
                    # AndKeywords carries the kwlist between format and
                    # the variadic pointers.
                    skip = format_index + (2 if "Keywords" in call_name else 1)
                    actual = len(args) - skip
                    if actual != expected:
                        yield Finding(
                            rel,
                            stmt.line,
                            1,
                            "RPL802",
                            self.name,
                            f"`{call_name}` format \"{fmt}\" consumes "
                            f"{expected} argument(s) but {actual} are "
                            f"passed in `{function.name}`; a mismatch "
                            "reads or writes past the variadic stack",
                        )

    # RPL803 ------------------------------------------------------------

    def _check_null_checks(
        self, rel: str, function: _CFunction
    ) -> Iterator[Finding]:
        statements = function.statements
        allocators = _OWNING_ALLOCATORS | _MEMORY_ALLOCATORS
        assign_re = re.compile(
            rf"(?<![\w.\]>])({_IDENT})\s*=\s*({_IDENT})\s*\("
        )
        for index, stmt in enumerate(statements):
            for match in assign_re.finditer(stmt.text):
                var, callee = match.group(1), match.group(2)
                if callee not in allocators:
                    continue
                if _null_tested(stmt.text, var):
                    continue  # if ((x = alloc()) == NULL) style
                rest = statements[index + 1 :]
                if any(_null_tested(s.text, var) for s in rest):
                    continue
                uses = [
                    s
                    for s in rest
                    if re.search(rf"\b{re.escape(var)}\b", s.text)
                ]
                if all(
                    re.fullmatch(rf"\s*return\s+{re.escape(var)}\s*", u.text)
                    for u in uses
                ):
                    continue  # only returned: NULL propagates to caller
                yield Finding(
                    rel,
                    stmt.line,
                    1,
                    "RPL803",
                    self.name,
                    f"`{var} = {callee}(...)` in `{function.name}` is "
                    "used without a NULL check; allocation failure here "
                    "becomes a crash instead of a raised MemoryError",
                )

    # RPL804 ------------------------------------------------------------

    def _check_buffer_pairs(
        self, rel: str, function: _CFunction, pairs: list[tuple[str, str]]
    ) -> Iterator[Finding]:
        body = "\n".join(stmt.text for stmt in function.statements)
        for acquire, release in pairs:
            # The wrapper implementing a pair is allowed to be one-sided.
            if function.name in (acquire, release):
                continue
            acquire_re = re.compile(rf"\b{re.escape(acquire)}\s*\(")
            release_re = re.compile(rf"\b{re.escape(release)}\s*\(")
            if not acquire_re.search(body) or release_re.search(body):
                continue
            first = next(
                stmt
                for stmt in function.statements
                if acquire_re.search(stmt.text)
            )
            yield Finding(
                rel,
                first.line,
                1,
                "RPL804",
                self.name,
                f"`{function.name}` calls `{acquire}` but never "
                f"`{release}`; an unreleased view pins the exporting "
                "object's buffer for the life of the process",
            )


# ----------------------------------------------------------------------
# Lexing: comments, functions, statements
# ----------------------------------------------------------------------

def _strip_comments(text: str) -> str:
    """Blank comments (preserving newlines); string literals survive."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and text[i + 1 : i + 2] == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c == "/" and text[i + 1 : i + 2] == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            out.append(" " * (end - i))
            i = end
        elif c in "\"'":
            end = _string_end(text, i)
            out.append(text[i:end])
            i = end
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _string_end(text: str, start: int) -> int:
    quote = text[start]
    i = start + 1
    n = len(text)
    while i < n and text[i] != quote:
        i += 2 if text[i] == "\\" else 1
    return min(i + 1, n)


def _suppressed_lines(text: str, pass_name: str) -> set[int]:
    """Lines covered by a justified C-comment suppression (and the next)."""
    covered: set[int] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        names = {name.strip() for name in match.group(1).split(",")}
        if pass_name in names or "all" in names:
            covered.add(lineno)
            covered.add(lineno + 1)
    return covered


def _functions(clean: str) -> Iterator[_CFunction]:
    """Top-level function definitions of a comment-stripped file."""
    depth = 0
    i, n = 0, len(clean)
    header_start = 0
    line = 1
    while i < n:
        c = clean[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in "\"'":
            i = _string_end(clean, i)
            continue
        if c in ";}" and depth == 0:
            header_start = i + 1
            i += 1
            continue
        if c == "{":
            if depth == 0:
                header = clean[header_start:i]
                body_start = i + 1
                name = _function_name(header)
                i = _matching_brace(clean, i)
                if name is not None:
                    body = clean[body_start : i - 1]
                    start_line = clean.count("\n", 0, header_start) + 1
                    body_line = clean.count("\n", 0, body_start) + 1
                    yield _CFunction(
                        name,
                        start_line,
                        tuple(_statements(body, body_line)),
                    )
                line = clean.count("\n", 0, i) + 1
                header_start = i
                continue
            depth += 1
            i += 1
            continue
        if c == "}":
            depth = max(depth - 1, 0)
            i += 1
            continue
        i += 1
    return


def _matching_brace(clean: str, open_index: int) -> int:
    """Index one past the brace matching ``clean[open_index] == '{'``."""
    depth = 0
    i, n = open_index, len(clean)
    while i < n:
        c = clean[i]
        if c in "\"'":
            i = _string_end(clean, i)
            continue
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _function_name(header: str) -> str | None:
    """The defined name in a function header, or None for non-functions."""
    header = "\n".join(
        line
        for line in header.split("\n")
        if not line.lstrip().startswith("#")
    ).strip()
    if not header or "=" in header.split("(")[0]:
        return None
    match = re.search(rf"\b({_IDENT})\s*\([^;{{}}]*\)\s*$", header, re.S)
    if match is None:
        return None
    name = match.group(1)
    # `if`/`for`/`while`/`switch` headers never reach here (they only
    # occur at depth > 0), but struct initializers and macro calls do.
    if name in {"PyDoc_STRVAR", "PyMODINIT_FUNC"}:
        return None
    return name


def _statements(body: str, first_line: int) -> Iterator[_Stmt]:
    """Split a function body into statements, ``;``-aware and
    paren-aware (``for(;;)`` semicolons do not split)."""
    depth = 0
    parens = 0
    start = 0
    line = first_line
    start_line = first_line
    i, n = 0, len(body)

    def emit(end: int, is_header: bool) -> _Stmt | None:
        text = body[start:end].strip()
        if not text:
            return None
        # Drop a leading `label:` so event regexes see the statement.
        text = re.sub(rf"^({_IDENT})\s*:\s*", "", text)
        if not text:
            return None
        return _Stmt(text, start_line, depth, is_header)

    while i < n:
        c = body[i]
        if c == "\n":
            line += 1
            if body[start:i].strip() == "":
                start = i + 1
                start_line = line
            i += 1
            continue
        if c in "\"'":
            i = _string_end(body, i)
            continue
        if c == "(":
            parens += 1
        elif c == ")":
            parens = max(parens - 1, 0)
        elif c == ";" and parens == 0:
            stmt = emit(i, is_header=False)
            if stmt is not None:
                yield stmt
            start = i + 1
            start_line = line
        elif c == "{" and parens == 0:
            stmt = emit(i, is_header=True)
            if stmt is not None:
                yield stmt
            depth += 1
            start = i + 1
            start_line = line
        elif c == "}" and parens == 0:
            stmt = emit(i, is_header=False)
            if stmt is not None:
                yield stmt
            depth = max(depth - 1, 0)
            start = i + 1
            start_line = line
        i += 1
    tail = emit(n, is_header=False)
    if tail is not None:
        yield tail


# ----------------------------------------------------------------------
# RPL801 helpers: ownership intervals
# ----------------------------------------------------------------------

def _acquisitions(function: _CFunction) -> dict[str, int]:
    """var -> statement index of its (first) owning acquisition."""
    acquired: dict[str, int] = {}
    allocators = _OWNING_ALLOCATORS | _MEMORY_ALLOCATORS
    assign_re = re.compile(rf"(?<![\w.\]>])({_IDENT})\s*=\s*({_IDENT})\s*\(")
    for index, stmt in enumerate(function.statements):
        for match in assign_re.finditer(stmt.text):
            var, callee = match.group(1), match.group(2)
            if callee in allocators and var not in acquired:
                acquired[var] = index
    return acquired


def _interval_ends(
    function: _CFunction, acquisitions: Mapping[str, int]
) -> dict[str, int]:
    """var -> statement index of the first release/steal/transfer."""
    ends: dict[str, int] = {}

    def note(var: str, index: int) -> None:
        if var in acquisitions and index > acquisitions[var]:
            ends.setdefault(var, index)

    for index, stmt in enumerate(function.statements):
        text = stmt.text
        for releaser in _RELEASERS:
            for match in re.finditer(
                rf"\b{releaser}\s*\(\s*({_IDENT})\s*\)", text
            ):
                note(match.group(1), index)
        for stealer, arg_index in _STEALERS.items():
            for args in _calls_of(text, stealer):
                if arg_index < len(args):
                    arg = args[arg_index].strip()
                    if re.fullmatch(_IDENT, arg):
                        note(arg, index)
        for args in _calls_of(text, "Py_BuildValue"):
            fmt = _string_literal(args[0]) if args else None
            if fmt is None:
                continue
            for position in _stolen_positions(fmt):
                if position + 1 < len(args):
                    arg = args[position + 1].strip()
                    if re.fullmatch(_IDENT, arg):
                        note(arg, index)
        match = re.match(rf"return\s+({_IDENT})\s*$", text)
        if match is not None:
            note(match.group(1), index)
        for match in re.finditer(
            rf"[\w\]]\s*(?:->|\.)\s*{_IDENT}\s*=\s*({_IDENT})\s*$", text
        ):
            note(match.group(1), index)
    return ends


def _error_return(stmt: _Stmt) -> str | None:
    """The error-return expression of a statement, if it is one."""
    match = re.search(
        r"\breturn\s+(NULL|-1|0|PyErr_NoMemory\s*\(\s*\))\s*$", stmt.text
    )
    if match is None:
        return None
    value = match.group(1)
    if value == "0":
        return None  # `return 0` is the *success* path for int funcs
    return f"return {'PyErr_NoMemory()' if value.startswith('PyErr') else value}"


def _null_checked_vars(statements: tuple[_Stmt, ...], index: int) -> set[str]:
    """Vars an enclosing/same-statement ``if`` proved NULL at ``index``."""
    stmt = statements[index]
    conditions = []
    inline = re.search(r"\bif\s*\((.*)\)", stmt.text, re.S)
    if inline is not None:
        conditions.append(inline.group(1))
    else:
        # Every enclosing `if` header, walking out block by block: at
        # `if (a==NULL) { if (b==NULL) { return NULL; } }` both a and b
        # are proven NULL on the return path.
        target_depth = stmt.depth
        for previous in reversed(statements[:index]):
            if previous.depth >= target_depth:
                continue
            if not previous.is_header:
                break
            header = re.search(r"\bif\s*\((.*)\)", previous.text, re.S)
            if header is not None:
                conditions.append(header.group(1))
            target_depth = previous.depth
            if target_depth == 0:
                break
    exempt: set[str] = set()
    for condition in conditions:
        for match in re.finditer(rf"({_IDENT})\s*==\s*NULL", condition):
            exempt.add(match.group(1))
        for match in re.finditer(rf"!\s*({_IDENT})\b(?!\s*\()", condition):
            exempt.add(match.group(1))
    return exempt


# ----------------------------------------------------------------------
# Call/format parsing (shared by RPL801/802)
# ----------------------------------------------------------------------

def _calls_of(text: str, name: str) -> Iterator[list[str]]:
    """Top-level-comma-split argument lists of each ``name(...)`` call."""
    for match in re.finditer(rf"\b{re.escape(name)}\s*\(", text):
        open_index = match.end() - 1
        close = _matching_paren(text, open_index)
        if close is None:
            continue
        yield _split_args(text[open_index + 1 : close])


def _matching_paren(text: str, open_index: int) -> int | None:
    depth = 0
    i, n = open_index, len(text)
    while i < n:
        c = text[i]
        if c in "\"'":
            i = _string_end(text, i)
            continue
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return None


def _split_args(arglist: str) -> list[str]:
    args: list[str] = []
    depth = 0
    start = 0
    i, n = 0, len(arglist)
    while i < n:
        c = arglist[i]
        if c in "\"'":
            i = _string_end(arglist, i)
            continue
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            args.append(arglist[start:i].strip())
            start = i + 1
        i += 1
    tail = arglist[start:].strip()
    if tail or args:
        args.append(tail)
    return args


def _string_literal(arg: str) -> str | None:
    """The concatenated value of an argument made only of "..." pieces."""
    pieces = re.findall(r'"((?:[^"\\]|\\.)*)"', arg)
    stripped = re.sub(r'"(?:[^"\\]|\\.)*"', "", arg).strip()
    if not pieces or stripped:
        return None
    return "".join(pieces)


def _format_arity(fmt: str) -> int | None:
    """Variadic arguments a ParseTuple/BuildValue format consumes."""
    count = 0
    i, n = 0, len(fmt)
    while i < n:
        c = fmt[i]
        if c in ":;":
            break  # function-name / error-message suffix
        if c in _ZERO_ARG_CHARS:
            i += 1
            continue
        if c == "e":  # es / et (+#): encoding conversions
            if fmt[i + 1 : i + 2] not in ("s", "t"):
                return None
            count += 2
            i += 2
            if fmt[i : i + 1] == "#":
                count += 1
                i += 1
            continue
        if c in _ONE_ARG_UNITS:
            count += 1
            i += 1
            if fmt[i : i + 1] == "#":
                count += 1
                i += 1
            elif fmt[i : i + 1] == "*":
                i += 1  # Py_buffer*: still one argument
            elif c == "O" and fmt[i : i + 1] in ("!", "&"):
                count += 1
                i += 1
            continue
        return None  # unmodelled unit: skip the check, never guess
    return count


def _stolen_positions(fmt: str) -> Iterator[int]:
    """Variadic positions a BuildValue format *steals* (``N`` units)."""
    position = 0
    i, n = 0, len(fmt)
    while i < n:
        c = fmt[i]
        if c in ":;":
            break
        if c in _ZERO_ARG_CHARS:
            i += 1
            continue
        if c in _ONE_ARG_UNITS:
            if c == "N":
                yield position
            position += 1
            i += 1
            if fmt[i : i + 1] == "#":
                position += 1
                i += 1
            elif fmt[i : i + 1] == "*":
                i += 1
            elif c == "O" and fmt[i : i + 1] in ("!", "&"):
                position += 1
                i += 1
            continue
        return
    return


def _null_tested(text: str, var: str) -> bool:
    escaped = re.escape(var)
    patterns = (
        rf"\b{escaped}\s*==\s*NULL",
        rf"\b{escaped}\s*!=\s*NULL",
        rf"!\s*{escaped}\b",
        rf"\bif\s*\(\s*{escaped}\s*\)",
        rf"\b{escaped}\s*\?",
        rf"\b{escaped}\s*&&",
        rf"\b{escaped}\s*\|\|",
    )
    return any(re.search(pattern, text) for pattern in patterns)
