"""replint pass ``float-discipline``: honest float comparison and NaN gating.

The paper's guarantee is stated in *ranks*: an answer within
``eps * n`` positions of the true quantile (Section 2).  Rank accounting
stays honest only if the code never pretends floats have exact
equality — a ``==`` against a float expression silently partitions
values that compare unequal but are semantically the same rank
neighbour — and if NaN (which has *no* rank: every comparison is false)
is rejected at one central, well-tested gate rather than by scattered
``x != x`` idioms that each reviewer must re-verify.  KLL and the
Cormode–Veselý lower bound hinge on the same accounting.

Codes:

* ``RPL301`` — ``==`` / ``!=`` where an operand is a float literal or a
  ``float(...)`` / ``math.inf`` / ``math.nan`` expression; compare with
  an explicit tolerance, or restructure to avoid equality entirely.
* ``RPL302`` — the self-comparison NaN idiom (``x != x`` / ``x == x``);
  call the central gate (``nan-gate`` option, default
  ``repro.kernels.is_nan``) so NaN policy lives in exactly one place.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from typing import Any

from repro.analysis.engine import Finding, Pass, SourceModule, register

__all__ = ["FloatDisciplinePass"]

#: Dotted names whose value is a float constant expression.
_FLOAT_CONSTANTS = {"math.inf", "math.nan", "math.pi", "math.e", "math.tau"}


@register
class FloatDisciplinePass(Pass):
    """No float equality; NaN checks go through the central gate."""

    name = "float-discipline"
    codes = {
        "RPL301": "`==`/`!=` on a float expression",
        "RPL302": "NaN self-comparison instead of the central gate",
    }
    default_options: dict[str, Any] = {
        "packages": [
            "repro.core",
            "repro.stats",
            "repro.sampling",
            "repro.kernels",
            "repro.baselines",
        ],
        "nan-gate": "repro.kernels.is_nan",
    }

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        gate = str(options.get("nan-gate", "repro.kernels.is_nan"))
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._same_expression(left, right):
                    yield self._finding(
                        module,
                        node,
                        "RPL302",
                        f"`{ast.unparse(left)} "
                        f"{'!=' if isinstance(op, ast.NotEq) else '=='} "
                        f"{ast.unparse(right)}` is the NaN idiom; call "
                        f"the central gate `{gate}` so NaN policy has "
                        "one audited home",
                    )
                elif any(
                    self._is_float_expression(module, side)
                    for side in (left, right)
                ):
                    yield self._finding(
                        module,
                        node,
                        "RPL301",
                        "equality on a float expression; floats that "
                        "differ in the last ulp are distinct ranks here "
                        "— compare with a tolerance or restructure",
                    )

    @staticmethod
    def _same_expression(left: ast.expr, right: ast.expr) -> bool:
        return ast.dump(left) == ast.dump(right)

    def _is_float_expression(self, module: SourceModule, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return self._is_float_expression(module, node.operand)
        if isinstance(node, ast.Call):
            return module.resolve(node.func) == "float"
        if isinstance(node, ast.Attribute):
            return module.resolve(node) in _FLOAT_CONSTANTS
        return False

    def _finding(
        self, module: SourceModule, node: ast.AST, code: str, message: str
    ) -> Finding:
        return Finding(
            module.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            code,
            self.name,
            message,
        )
