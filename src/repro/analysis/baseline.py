"""Baseline files: adopt a tool on a tree with known findings, fail on new.

A baseline records the current findings by drift-stable fingerprint
(path + code + message — deliberately no line numbers, so edits above a
known finding do not churn the file).  With ``--baseline`` the engine
filters findings the baseline already records and fails only on
*regressions*: findings the baseline has never seen.  Entries nothing
matched anymore are *stale* — the debt was paid — and are reported on
the summary line so the baseline can be re-recorded, but they never fail
a run (a shrinking baseline must always be a safe no-op to land).

Matching is by fingerprint **count**: a baseline recording two RPL502
findings in one file tolerates at most two — the third identical finding
is a regression, not more of the same.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.engine import Finding, Report

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]

#: Schema version of the baseline file format.
_BASELINE_VERSION = 1


def write_baseline(report: Report, path: Path) -> int:
    """Record the report's findings as the new baseline; returns count."""
    counts = Counter(finding.fingerprint() for finding in report.findings)
    entries = [
        {"fingerprint": fingerprint, "count": count}
        for fingerprint, count in sorted(counts.items())
    ]
    payload = {
        "tool": "replint",
        "version": _BASELINE_VERSION,
        "findings": entries,
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return sum(counts.values())


def load_baseline(path: Path) -> Counter[str]:
    """Fingerprint -> tolerated count from a baseline file.

    :raises ValueError: on a malformed file (baselines gate CI, so a
        corrupt one must fail loudly, not act as an empty allowlist).
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("tool") != "replint":
        raise ValueError(f"{path}: not a replint baseline file")
    if payload.get("version") != _BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {payload.get('version')!r}"
        )
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"{path}: baseline 'findings' must be a list")
    counts: Counter[str] = Counter()
    for entry in entries:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("fingerprint"), str)
            or not isinstance(entry.get("count"), int)
            or entry["count"] < 1
        ):
            raise ValueError(f"{path}: malformed baseline entry {entry!r}")
        counts[entry["fingerprint"]] += entry["count"]
    return counts


def apply_baseline(report: Report, baseline: Counter[str]) -> Report:
    """The report with baselined findings removed and staleness computed.

    Findings whose fingerprint still has budget in the baseline are
    dropped (counted in ``report.baselined``); budget left over after
    all findings are matched becomes ``report.stale_baseline``.
    """
    remaining = Counter(baseline)
    kept: list[Finding] = []
    baselined = 0
    for finding in report.findings:
        fingerprint = finding.fingerprint()
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            baselined += 1
        else:
            kept.append(finding)
    stale = tuple(
        fingerprint for fingerprint, count in sorted(remaining.items()) if count > 0
    )
    return Report(
        findings=tuple(kept),
        files_checked=report.files_checked,
        suppressed=report.suppressed,
        passes=report.passes,
        baselined=report.baselined + baselined,
        stale_baseline=stale,
    )
