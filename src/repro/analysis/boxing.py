"""replint pass ``buffer-arena``: no boxed buffer storage on the data plane.

The columnar arena (:mod:`repro.core.arena`) exists so the ``b * k``
resident elements live in one contiguous float64 store and flow through
the kernels as typed slices — the memory-bandwidth data plane.  One
``list[float]`` attribute quietly reintroduces a pointer-chasing boxed
store (28+ bytes per element instead of 8, no vectorisation), and one
stray ``.tolist()`` in a hot path pays a per-element boxing round-trip
that the arena was built to eliminate.  This pass keeps both from
regressing.

Codes:

* ``RPL501`` — a ``list[float]``-annotated attribute (instance or
  dataclass field) inside the core/kernels packages; element storage
  belongs in the arena (``array('d')`` / float64 ndarray).  Deliberate
  O(k) boxed staging must carry a justified suppression.
* ``RPL502`` — a ``.tolist()`` conversion call; values should stay
  columnar from ingest to query.  The kernel backends' own conversion
  surface and cold paths carry justified suppressions.
* ``RPL503`` — a python-level per-element loop (``for``/``while``/
  comprehension/generator) inside a *native-boundary* module (the
  ``native-modules`` option; by default the compiled backend's shim).
  The shim's contract is that every per-element operation crosses into
  the C core once per batch; a python loop there reintroduces exactly
  the per-element PyFloat round-trip the extension exists to remove,
  and it does so silently — throughput degrades, nothing breaks.
  Sanctioned per-element surfaces carry justified suppressions.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from typing import Any

from repro.analysis.engine import Finding, Pass, SourceModule, register

__all__ = ["BufferArenaPass"]

#: Annotation spellings of a boxed float store.
_BOXED_ANNOTATIONS = {"list[float]", "List[float]", "typing.List[float]"}

#: AST shapes that iterate per element at python speed.
_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


@register
class BufferArenaPass(Pass):
    """Buffer elements stay columnar; no boxed lists on the data plane."""

    name = "buffer-arena"
    codes = {
        "RPL501": "boxed `list[float]` element storage",
        "RPL502": "`.tolist()` conversion on the data plane",
        "RPL503": "python-level per-element loop on the native boundary",
    }
    default_options: dict[str, Any] = {
        "packages": ["repro.core", "repro.kernels"],
        "native-modules": ["repro.kernels.native_backend"],
    }

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        native_modules = list(options.get("native-modules", ()))
        if module.module is not None and module.module in native_modules:
            for node in ast.walk(module.tree):
                if isinstance(node, _LOOP_NODES):
                    yield self._finding(
                        module,
                        node,
                        "RPL503",
                        "python-level per-element iteration in a "
                        "native-boundary module; the compiled kernel shim "
                        "must cross into the C core once per batch, not "
                        "once per element — move the loop into "
                        "repro.kernels._native or justify the cold path",
                    )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                # Class-body annotations: dataclass fields and slots.
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and self._is_boxed(
                        stmt.annotation
                    ):
                        yield self._storage_finding(module, stmt)
            elif isinstance(node, ast.AnnAssign):
                # Instance attributes: `self._staged: list[float] = []`.
                if isinstance(node.target, ast.Attribute) and self._is_boxed(
                    node.annotation
                ):
                    yield self._storage_finding(module, node)
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr == "tolist":
                    yield self._finding(
                        module,
                        node,
                        "RPL502",
                        "`.tolist()` boxes one PyFloat per element; keep "
                        "values columnar through the kernels (arena views, "
                        "`array('d')`, ndarray slices), or justify the "
                        "cold-path conversion",
                    )

    @staticmethod
    def _is_boxed(annotation: ast.expr | None) -> bool:
        if annotation is None:
            return False
        return ast.unparse(annotation) in _BOXED_ANNOTATIONS

    def _storage_finding(self, module: SourceModule, node: ast.AST) -> Finding:
        return self._finding(
            module,
            node,
            "RPL501",
            "boxed `list[float]` element storage; resident buffer elements "
            "belong in the columnar arena (`array('d')` / float64 ndarray) "
            "at 8 bytes each — justify O(k) staging lists explicitly",
        )

    def _finding(
        self, module: SourceModule, node: ast.AST, code: str, message: str
    ) -> Finding:
        return Finding(
            module.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            code,
            self.name,
            message,
        )
