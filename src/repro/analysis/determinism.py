"""replint pass ``determinism``: seeded, replayable randomness only.

The Hoeffding argument behind the paper's (eps, delta) guarantee
(Section 4.5) treats each sampler as an independent random variable the
proof can reason about — which an implementation honours by drawing
every bit of randomness from an RNG object that was *constructed from an
explicit seed parameter*.  Global module-level RNGs (``random.random()``,
``np.random.rand()``) share hidden state across components, and
wall-clock or OS entropy (``time.time()``, ``os.urandom()``) makes a run
unreplayable, so a failure seen once can never be debugged.  The
checkpoint layer's bit-identical RNG restore and the parallel runtime's
``seed_for_worker`` derivation both collapse if any code path draws from
state the seed does not reach.

Codes:

* ``RPL101`` — call through the global :mod:`random` module
  (``random.random()``, ``random.seed()`` …); construct and thread a
  ``random.Random(seed)`` instead.
* ``RPL102`` — call through the global :mod:`numpy.random` module;
  use ``np.random.default_rng(seed)`` / ``Generator`` objects.
* ``RPL103`` — wall-clock or OS entropy source (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid.uuid4``, :mod:`secrets`).
* ``RPL104`` — RNG constructed without a seed argument
  (``random.Random()``, ``default_rng()``); the seed must flow in from
  a parameter even when callers may pass ``None``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from typing import Any

from repro.analysis.engine import Finding, Pass, SourceModule, register

__all__ = ["DeterminismPass"]

#: random.* attributes that are legitimate without drawing global state.
_RANDOM_ALLOWED = {"random.Random"}

#: numpy.random attributes that construct seedable generators rather
#: than drawing from the hidden global state.
_NUMPY_ALLOWED_TAILS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}

#: Dotted names whose *call* is a wall-clock / OS-entropy draw.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: RNG constructors that must receive at least one (seed/state) argument.
_SEEDED_CONSTRUCTORS = {
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
}


@register
class DeterminismPass(Pass):
    """No unseeded or global randomness; no wall-clock entropy."""

    name = "determinism"
    codes = {
        "RPL101": "call through the global `random` module",
        "RPL102": "call through the global `numpy.random` module",
        "RPL103": "wall-clock or OS entropy source",
        "RPL104": "RNG constructed without an explicit seed argument",
    }
    default_options: dict[str, Any] = {
        "packages": [
            "repro.core",
            "repro.sampling",
            "repro.kernels",
            "repro.stats",
            "repro.baselines",
            "repro.audit",
        ],
    }

    def check(
        self, module: SourceModule, options: Mapping[str, Any]
    ) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve(node.func)
            if dotted is None:
                continue
            finding = self._classify(module, node, dotted)
            if finding is not None:
                yield finding

    def _classify(
        self, module: SourceModule, node: ast.Call, dotted: str
    ) -> Finding | None:
        if dotted in _SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                return self._finding(
                    module,
                    node,
                    "RPL104",
                    f"`{dotted}()` without a seed cannot be replayed; "
                    "accept a seed parameter and construct "
                    f"`{dotted}(seed)`",
                )
            return None
        if dotted == "random.SystemRandom":
            return self._finding(
                module,
                node,
                "RPL103",
                "`random.SystemRandom` draws OS entropy and can never "
                "be replayed from a seed",
            )
        if dotted.startswith("random."):
            return self._finding(
                module,
                node,
                "RPL101",
                f"`{dotted}()` draws from the hidden module-level RNG; "
                "thread a seeded `random.Random` instance instead",
            )
        if dotted.startswith("numpy.random.") or dotted.startswith("np.random."):
            tail = dotted.rsplit(".", 1)[1]
            if tail in _NUMPY_ALLOWED_TAILS:
                return None
            return self._finding(
                module,
                node,
                "RPL102",
                f"`{dotted}()` draws from numpy's hidden global state; "
                "use a `numpy.random.default_rng(seed)` generator",
            )
        if dotted in _CLOCK_CALLS or dotted.startswith("secrets."):
            return self._finding(
                module,
                node,
                "RPL103",
                f"`{dotted}()` is wall-clock/OS entropy; seeded code "
                "paths must be replayable bit-for-bit",
            )
        return None

    def _finding(
        self, module: SourceModule, node: ast.AST, code: str, message: str
    ) -> Finding:
        return Finding(
            module.rel,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            code,
            self.name,
            message,
        )
