"""The whole-program index behind replint's cross-module passes.

Per-file passes see one :class:`~repro.analysis.engine.SourceModule` at a
time, which is exactly right for invariants that are local properties of
a file (an unseeded RNG call, a bare ``except``).  The riskiest
invariants in this repo are *not* local: a seed parameter accepted in
``repro.service.tenants`` must survive the call chain into
``repro.runtime`` workers, an exported name is dead only if *no other
module anywhere* references it, and a resource acquired in one layer may
be released two layers up.  :class:`ProjectGraph` gives passes the
whole-program view those checks need from **one parse of the repo**: the
same ``SourceModule`` objects the per-file phase already built, plus
module/import/call/symbol-reference indices over them.

The graph is deliberately syntactic — no imports are executed, so it is
safe on broken or hostile trees — and resolution is alias-chasing over
the static import tables: ``from repro.core import ParallelQuantiles``
in ``repro/core/__init__.py`` makes ``repro.core.ParallelQuantiles`` an
*address* of ``repro.core.parallel.ParallelQuantiles``, and
:meth:`ProjectGraph.resolve_address` follows such chains to a fixpoint.

Passes receive the graph through the optional
:meth:`~repro.analysis.engine.Pass.project_check` hook; the engine
builds it once per run, and only when a selected pass overrides the
hook, so per-file-only runs pay nothing.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.analysis.engine import SourceModule

__all__ = ["CallableInfo", "ProjectGraph"]

#: Alias chains longer than this are cycles (or adversarial input);
#: resolution stops rather than looping.
_MAX_ALIAS_HOPS = 16


@dataclass(frozen=True, slots=True)
class CallableInfo:
    """Signature facts of one project-defined function/method/class.

    For a class, the parameters are its ``__init__``'s (minus ``self``)
    so call-threading checks treat construction like any other call.
    """

    #: Fully-qualified dotted name (``repro.core.parallel.worker_seed``).
    qualname: str
    #: Module the definition lives in.
    module: str
    #: Line of the ``def``/``class`` statement.
    line: int
    #: Positional/keyword parameter names, in order (no self/cls).
    params: tuple[str, ...]
    #: Parameter names that have defaults.
    with_default: frozenset[str]
    #: Whether the signature ends in ``**kwargs`` (absorbs any keyword).
    has_kwargs: bool


class ProjectGraph:
    """Module/import/call/symbol-reference indices over one parsed repo.

    Built by :func:`~repro.analysis.engine.analyze_paths` from the
    modules of the current run; passes query it, they never mutate it.
    """

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        #: Dotted module name -> its SourceModule (loose scripts are in
        #: :attr:`scripts`, not here).
        self.modules: dict[str, SourceModule] = {}
        #: Files outside any package (scripts, benchmarks, examples).
        self.scripts: list[SourceModule] = []
        #: Report-relative path -> SourceModule, for suppression lookups.
        self.by_path: dict[str, SourceModule] = {}
        #: module -> dotted import targets (modules or module.symbol).
        self.imports: dict[str, set[str]] = {}
        #: Reverse of :attr:`imports`: target module -> importing modules.
        self.importers: dict[str, set[str]] = {}
        #: Every dotted name referenced anywhere, resolved through each
        #: file's alias table (``np.random.rand`` -> ``numpy.random.rand``).
        self.references: set[str] = set()
        #: module -> names listed in its ``__all__`` with their lines.
        self.exports: dict[str, list[tuple[str, int]]] = {}
        #: module -> names bound at module top level (defs, classes,
        #: assignments, imports).
        self.defined: dict[str, set[str]] = {}
        #: qualname -> signature facts for top-level defs, classes, and
        #: one level of methods.
        self.callables: dict[str, CallableInfo] = {}

        self._uses_cache: dict[str, set[str]] = {}
        for module in modules:
            self.by_path[module.rel] = module
            if module.module is None:
                self.scripts.append(module)
            else:
                self.modules[module.module] = module
        for module in modules:
            self._index_module(module)
        for source, targets in self.imports.items():
            for target in targets:
                head = self._module_prefix(target)
                if head is not None:
                    self.importers.setdefault(head, set()).add(source)

    # -- queries -------------------------------------------------------

    def module_for_path(self, rel: str) -> SourceModule | None:
        """The module a finding path belongs to (suppression lookups)."""
        return self.by_path.get(rel)

    def importers_of(self, module: str) -> frozenset[str]:
        """Modules that import ``module`` (directly, by any alias form)."""
        return frozenset(self.importers.get(module, ()))

    def resolve_address(self, dotted: str) -> str:
        """Chase re-export aliases to the defining address of a name.

        ``repro.core.ParallelQuantiles`` resolves through the package
        ``__init__``'s import table to
        ``repro.core.parallel.ParallelQuantiles``; unknown names resolve
        to themselves.  Attribute tails survive resolution
        (``repro.core.ParallelQuantiles.update`` keeps ``.update``).
        """
        seen = 0
        while seen < _MAX_ALIAS_HOPS:
            seen += 1
            step = self._resolve_one(dotted)
            if step == dotted:
                return dotted
            dotted = step
        return dotted

    def is_referenced(self, module: str, name: str) -> bool:
        """Whether ``module.name`` is referenced from any *other* module.

        A reference counts when a resolved dotted use in another file —
        an import, an attribute access, a call — lands on the symbol's
        defining address, including uses spelled through package
        re-export addresses (``repro.X`` for ``repro.core.parallel.X``).
        """
        target = f"{module}.{name}"
        for ref in self.references_to(target):
            owner = self.by_path.get(ref)
            if owner is None or owner.module != module:
                return True
        return False

    def references_to(self, target: str) -> Iterator[str]:
        """Report-relative paths of files whose uses resolve to ``target``."""
        for module in [*self.modules.values(), *self.scripts]:
            if target in self._resolved_uses(module):
                yield module.rel

    def callable_info(self, dotted: str) -> CallableInfo | None:
        """Signature facts for a call target, chasing re-export aliases."""
        resolved = self.resolve_address(dotted)
        return self.callables.get(resolved)

    # -- construction helpers ------------------------------------------

    def _module_prefix(self, dotted: str) -> str | None:
        """Longest prefix of a dotted name that is a scanned module."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.modules:
                return candidate
        return None

    def _resolve_one(self, dotted: str) -> str:
        head = self._module_prefix(dotted)
        if head is None or head == dotted:
            return dotted
        tail = dotted[len(head) + 1 :].split(".")
        origin = self.modules[head].aliases.get(tail[0])
        if origin is None:
            return dotted
        return ".".join([origin, *tail[1:]])

    def _resolved_uses(self, module: SourceModule) -> set[str]:
        cached = self._uses_cache.get(module.rel)
        if cached is None:
            cached = set()
            for dotted in _dotted_uses(module):
                resolved = self.resolve_address(dotted)
                cached.add(resolved)
                # Every prefix of a resolved use is itself used: a call
                # of `repro.core.parallel.X.update` references X too.
                parts = resolved.split(".")
                for length in range(2, len(parts)):
                    cached.add(self.resolve_address(".".join(parts[:length])))
            self._uses_cache[module.rel] = cached
        return cached

    def _index_module(self, module: SourceModule) -> None:
        name = module.module
        if name is not None:
            self.imports[name] = set()
            self.defined[name] = _toplevel_bindings(module.tree)
            self.exports[name] = _all_entries(module.tree)
            for info in _callables(module.tree, name):
                self.callables[info.qualname] = info
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if name is not None:
                        self.imports[name].add(item.name)
                    self.references.add(item.name)
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for item in node.names:
                    target = (
                        node.module
                        if item.name == "*"
                        else f"{node.module}.{item.name}"
                    )
                    if name is not None:
                        self.imports[name].add(target)
                    self.references.add(target)


def _dotted_uses(module: SourceModule) -> Iterator[str]:
    """Every dotted name a file uses, resolved through its alias table."""
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Attribute, ast.Name)):
            dotted = module.resolve(node)
            if dotted is not None and "." in dotted:
                yield dotted
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for item in node.names:
                if item.name != "*":
                    yield f"{node.module}.{item.name}"
        elif isinstance(node, ast.Import):
            for item in node.names:
                yield item.name


def _toplevel_bindings(tree: ast.Module) -> set[str]:
    bound: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                bound.update(_binding_names(target))
        elif isinstance(stmt, ast.AnnAssign):
            bound.update(_binding_names(stmt.target))
        elif isinstance(stmt, ast.Import):
            for item in stmt.names:
                bound.add(item.asname or item.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for item in stmt.names:
                if item.name != "*":
                    bound.add(item.asname or item.name)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # One conditional level deep: version-gated fallbacks like
            # the engine's tomllib import still count as bindings.
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for item in sub.names:
                        if item.name != "*":
                            bound.add(item.asname or item.name.split(".")[0])
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        bound.update(_binding_names(target))
    return bound


def _binding_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: set[str] = set()
        for element in target.elts:
            names.update(_binding_names(element))
        return names
    return set()


def _all_entries(tree: ast.Module) -> list[tuple[str, int]]:
    """(name, line) pairs of the module's ``__all__`` list literal."""
    entries: list[tuple[str, int]] = []
    for stmt in tree.body:
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            value = stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__all__"
        ):
            value = stmt.value
        if value is None or not isinstance(value, (ast.List, ast.Tuple)):
            continue
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                entries.append((element.value, element.lineno))
    return entries


def _callables(tree: ast.Module, module: str) -> Iterator[CallableInfo]:
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield _info_for(stmt, f"{module}.{stmt.name}", module, drop_self=False)
        elif isinstance(stmt, ast.ClassDef):
            init: ast.FunctionDef | ast.AsyncFunctionDef | None = None
            for body_stmt in stmt.body:
                if isinstance(body_stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield _info_for(
                        body_stmt,
                        f"{module}.{stmt.name}.{body_stmt.name}",
                        module,
                        drop_self=True,
                    )
                    if body_stmt.name == "__init__":
                        init = body_stmt
            if init is not None:
                yield _info_for(
                    init, f"{module}.{stmt.name}", module, drop_self=True
                )


def _info_for(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    module: str,
    drop_self: bool,
) -> CallableInfo:
    args = node.args
    positional = [a.arg for a in [*args.posonlyargs, *args.args]]
    if drop_self and positional:
        positional = positional[1:]
    keyword_only = [a.arg for a in args.kwonlyargs]
    defaults = positional[len(positional) - len(args.defaults) :] if args.defaults else []
    kw_defaults = [
        a.arg
        for a, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is not None
    ]
    return CallableInfo(
        qualname=qualname,
        module=module,
        line=node.lineno,
        params=tuple([*positional, *keyword_only]),
        with_default=frozenset([*defaults, *kw_defaults]),
        has_kwargs=args.kwarg is not None,
    )
