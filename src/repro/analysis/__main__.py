"""Command line of the replint engine: ``python -m repro.analysis``.

Exit codes: 0 clean, 1 findings, 2 usage/config error — so the command
works unmodified as a CI gate and a pre-commit hook.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    Report,
    analyze_paths,
    load_config,
    registered_passes,
)
from repro.analysis.sarif import render_sarif

__all__ = ["main", "parse_select"]

#: Output renderers accepted by ``--format``.
FORMATS = ("human", "json", "sarif")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "replint: invariant-aware static analysis "
            "(determinism, spawn-safety, dataflow, native-c, ...)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyse (default: [tool.replint] "
        "default-paths, else 'src')",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="human",
        help="report renderer (default: human)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json (kept for compatibility)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="PASS[,PASS...]",
        help="run only the named passes (repeatable and/or "
        "comma-separated; default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppress findings recorded in FILE; fail only on "
        "regressions (new findings)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record the current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="pyproject.toml to read [tool.replint] from "
        "(default: ./pyproject.toml when present)",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="list registered passes and their finding codes, then exit",
    )
    return parser


def _list_passes() -> int:
    for name, instance in registered_passes().items():
        print(name)
        for code, summary in sorted(instance.codes.items()):
            print(f"  {code}  {summary}")
    return 0


def parse_select(entries: list[str] | None) -> list[str] | None:
    """Expand repeatable/comma-separated ``--select`` into pass names.

    :raises ValueError: naming an unknown pass, with the registry listed
        in the message — the CLI turns this into exit 2 on stderr so a
        typo can never silently run zero passes.
    """
    if not entries:
        return None
    names = [
        name.strip()
        for entry in entries
        for name in entry.split(",")
        if name.strip()
    ]
    known = registered_passes()
    unknown = [name for name in names if name not in known]
    if unknown:
        available = ", ".join(known)
        raise ValueError(
            f"unknown pass(es): {', '.join(sorted(set(unknown)))} "
            f"(available: {available})"
        )
    if not names:
        raise ValueError("--select given but no pass names supplied")
    return names


def _render(report: Report, fmt: str) -> str:
    if fmt == "json":
        return report.render_json()
    if fmt == "sarif":
        return render_sarif(report, registered_passes())
    return report.render()


def main(argv: list[str] | None = None) -> int:
    """Run the analysis; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_passes:
        return _list_passes()
    fmt = "json" if args.json else args.format
    try:
        config = load_config(Path(args.config) if args.config else None)
    except (ValueError, OSError) as exc:
        print(f"replint: config error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    raw_paths = args.paths or list(config.default_paths)
    paths = [Path(p) for p in raw_paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(
            f"replint: no such path(s): {', '.join(missing)}", file=sys.stderr
        )
        return EXIT_ERROR
    try:
        selected = parse_select(args.select)
    except ValueError as exc:
        print(f"replint: {exc}", file=sys.stderr)
        return EXIT_ERROR
    try:
        report = analyze_paths(paths, config, selected)
    except ValueError as exc:
        print(f"replint: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if args.write_baseline:
        count = write_baseline(report, Path(args.write_baseline))
        print(
            f"replint: wrote baseline of {count} finding(s) to "
            f"{args.write_baseline}"
        )
        return EXIT_CLEAN
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except (ValueError, OSError) as exc:
            print(f"replint: baseline error: {exc}", file=sys.stderr)
            return EXIT_ERROR
        report = apply_baseline(report, baseline)
    print(_render(report, fmt))
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
