"""Command line of the replint engine: ``python -m repro.analysis``.

Exit codes: 0 clean, 1 findings, 2 usage/config error — so the command
works unmodified as a CI gate and a pre-commit hook.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.engine import (
    EXIT_ERROR,
    analyze_paths,
    load_config,
    registered_passes,
)

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "replint: invariant-aware static analysis "
            "(determinism, spawn-safety, float-discipline, api-hygiene)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyse (default: [tool.replint] "
        "default-paths, else 'src')",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report (schema version 1)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="PASS",
        help="run only the named pass (repeatable; default: all)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="pyproject.toml to read [tool.replint] from "
        "(default: ./pyproject.toml when present)",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="list registered passes and their finding codes, then exit",
    )
    return parser


def _list_passes() -> int:
    for name, instance in registered_passes().items():
        print(name)
        for code, summary in sorted(instance.codes.items()):
            print(f"  {code}  {summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run the analysis; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_passes:
        return _list_passes()
    try:
        config = load_config(Path(args.config) if args.config else None)
    except (ValueError, OSError) as exc:
        print(f"replint: config error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    raw_paths = args.paths or list(config.default_paths)
    paths = [Path(p) for p in raw_paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(
            f"replint: no such path(s): {', '.join(missing)}", file=sys.stderr
        )
        return EXIT_ERROR
    selected = None
    if args.select:
        selected = [name for entry in args.select for name in entry.split(",")]
    try:
        report = analyze_paths(paths, config, selected)
    except ValueError as exc:
        print(f"replint: {exc}", file=sys.stderr)
        return EXIT_ERROR
    print(report.render_json() if args.json else report.render())
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
